"""Deterministic randomness plumbing.

All randomized components (the sparsifier, the distributed protocols, the
adversaries) accept a :class:`numpy.random.Generator`.  These helpers
derive independent child generators from a root seed so that

* experiments are reproducible given one integer seed, and
* per-vertex random choices are genuinely independent, which the proof of
  Theorem 2.1 relies on (Observation 2.9).
"""

from __future__ import annotations

import warnings

import numpy as np


def derive_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    generator (returned unchanged so callers can thread one generator
    through a pipeline).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def resolve_rng(
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    owner: str = "this function",
) -> np.random.Generator:
    """Resolve the uniform ``seed=`` / ``rng=`` keyword pair to a generator.

    The public surface accepts both keywords on every randomized entry
    point: ``seed`` is an integer (or ``None`` for fresh OS entropy) and
    ``rng`` is an existing :class:`numpy.random.Generator` to thread
    through a pipeline.  Passing both is an error.

    Two legacy call shapes from the pre-1.1 surface keep working, each
    with a :class:`DeprecationWarning`:

    * an **integer** passed via ``rng=`` (use ``seed=`` instead);
    * a **generator** passed via ``seed=`` (use ``rng=`` instead —
      the old ``RandomSparsifier(beta, eps, seed=gen)`` shape).

    Parameters
    ----------
    seed:
        Integer root seed, or ``None``.
    rng:
        Existing generator (returned unchanged), or ``None``.
    owner:
        Name of the calling API, used in error/warning messages.
    """
    if seed is not None and rng is not None:
        raise ValueError(f"{owner}: pass either seed= or rng=, not both")
    if rng is not None:
        if isinstance(rng, np.random.Generator):
            return rng
        warnings.warn(
            f"{owner}: passing an integer seed via rng= is deprecated; "
            "use the seed= keyword instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return np.random.default_rng(rng)
    if isinstance(seed, np.random.Generator):
        warnings.warn(
            f"{owner}: passing a Generator via seed= is deprecated; "
            "use the rng= keyword instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return seed
    return np.random.default_rng(seed)


# Generator-transformer primitive: it forks children from an *existing*
# generator, so a seed= twin would be ambiguous (resolve first, then spawn).
def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:  # repro-lint: ignore[R4]
    """Derive ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, which is the supported way
    to fork independent streams from one generator.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.spawn(count)
