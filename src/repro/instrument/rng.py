"""Deterministic randomness plumbing.

All randomized components (the sparsifier, the distributed protocols, the
adversaries) accept a :class:`numpy.random.Generator`.  These helpers
derive independent child generators from a root seed so that

* experiments are reproducible given one integer seed, and
* per-vertex random choices are genuinely independent, which the proof of
  Theorem 2.1 relies on (Observation 2.9).

Three layers live here:

* **Resolution** — :func:`resolve_rng` (the uniform ``seed=``/``rng=``
  pair) and :func:`spawn_rngs` (independent children via numpy's
  spawn-key mechanism).  :func:`derive_rng` is a deprecated alias kept
  for pre-1.3 callers.
* **Process-boundary specs** — :class:`RngSpec` /
  :func:`rng_spec` / :func:`rng_from_spec` capture a generator's
  *identity* (bit-generator class, entropy, spawn key) as a tiny
  picklable record, so engine task payloads ship the spec and rebuild
  the identical stream inside the worker instead of pickling a live
  generator (lint rule R8).
* **Sanitizer** — :class:`SanitizedGenerator` /
  :func:`sanitize_rng`, enabled by ``REPRO_RNG_SANITIZE=1``: a
  :class:`~numpy.random.Generator` subclass that stamps every stream
  with a stable id and counts draws, yielding
  :class:`RngFingerprint` records the engine uses to detect two tasks
  drawing from one stream and to assert ``workers=1`` / ``workers=N``
  equivalence.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

#: ``Generator`` methods that consume the underlying bit stream.  Kept in
#: sync with ``repro.lint.flow.DRAW_METHODS`` (the static analyzer's
#: consumption set); a unit test asserts the two agree.
DRAW_METHODS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "integers", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_hypergeometric", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f", "normal",
    "pareto", "permutation", "permuted", "poisson", "power", "random",
    "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})


def rng_sanitize_enabled() -> bool:
    """Whether ``REPRO_RNG_SANITIZE=1`` turned the runtime sanitizer on."""
    return os.environ.get("REPRO_RNG_SANITIZE", "") == "1"


def derive_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Deprecated: return a :class:`numpy.random.Generator` for the input.

    .. deprecated:: 1.3
        Use :func:`resolve_rng` with the explicit ``seed=``/``rng=``
        keywords.  ``derive_rng``'s single catch-all parameter silently
        aliases a passed generator, which is exactly the stream-sharing
        pattern rules R6-R8 exist to catch — the replacement makes the
        caller say which of the two things it means.
    """
    warnings.warn(
        "derive_rng is deprecated; call resolve_rng(seed=...) for an "
        "integer seed or resolve_rng(rng=...) to thread a Generator",
        DeprecationWarning,
        stacklevel=2,
    )
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def resolve_rng(
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
    *,
    owner: str = "this function",
) -> np.random.Generator:
    """Resolve the uniform ``seed=`` / ``rng=`` keyword pair to a generator.

    The public surface accepts both keywords on every randomized entry
    point: ``seed`` is an integer (or ``None`` for fresh OS entropy) and
    ``rng`` is an existing :class:`numpy.random.Generator` to thread
    through a pipeline.  Passing both is an error.

    Two legacy call shapes from the pre-1.1 surface keep working, each
    with a :class:`DeprecationWarning`:

    * an **integer** passed via ``rng=`` (use ``seed=`` instead);
    * a **generator** passed via ``seed=`` (use ``rng=`` instead —
      the old ``RandomSparsifier(beta, eps, seed=gen)`` shape).

    Parameters
    ----------
    seed:
        Integer root seed, or ``None``.
    rng:
        Existing generator (returned unchanged), or ``None``.
    owner:
        Name of the calling API, used in error/warning messages.
    """
    if seed is not None and rng is not None:
        raise ValueError(f"{owner}: pass either seed= or rng=, not both")
    if rng is not None:
        if isinstance(rng, np.random.Generator):
            return rng
        warnings.warn(
            f"{owner}: passing an integer seed via rng= is deprecated; "
            "use the seed= keyword instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return np.random.default_rng(rng)
    if isinstance(seed, np.random.Generator):
        warnings.warn(
            f"{owner}: passing a Generator via seed= is deprecated; "
            "use the rng= keyword instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return seed
    return np.random.default_rng(seed)


# Generator-transformer primitive: it forks children from an *existing*
# generator, so a seed= twin would be ambiguous (resolve first, then spawn).
def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:  # repro-lint: ignore[R4]
    """Derive ``count`` statistically independent child generators.

    Uses :meth:`numpy.random.Generator.spawn`, which is the supported way
    to fork independent streams from one generator.  When ``rng`` is a
    :class:`SanitizedGenerator`, the children are sanitized too (numpy's
    ``spawn`` constructs ``type(self)``).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return rng.spawn(count)


def _seed_seq_of(rng: np.random.Generator) -> np.random.SeedSequence:
    """The generator's :class:`~numpy.random.SeedSequence`, or raise.

    Every generator this package creates (``default_rng``, ``spawn``,
    :func:`rng_from_spec`) carries one; a generator built from a raw
    bit-generator state does not, and cannot be given a stable identity.
    """
    seed_seq = rng.bit_generator.seed_seq
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise ValueError(
            "generator has no SeedSequence (built from raw bit-generator "
            "state?); create generators via resolve_rng/spawn_rngs so "
            "they carry a spawn-key identity"
        )
    return seed_seq


# Identity primitive over an existing generator (like spawn_rngs): a
# seed= twin would be ambiguous.
def stream_id(rng: np.random.Generator) -> str:  # repro-lint: ignore[R4]
    """Stable identity of the generator's stream: ``entropy/spawn.key``.

    Two generators share a stream id exactly when they were created from
    the same entropy and spawn key — i.e. they *are* the same stream,
    wherever each copy lives.  The id survives pickling and process
    boundaries, which is what lets the engine detect two tasks drawing
    from one stream even across workers.
    """
    seed_seq = _seed_seq_of(rng)
    entropy = seed_seq.entropy
    key = ".".join(str(k) for k in seed_seq.spawn_key) or "root"
    return f"{entropy:x}/{key}"


@dataclass(frozen=True, order=True)
class RngSpec:
    """Picklable identity of a generator stream (not its position).

    Ship this across a process boundary instead of a live generator:
    :func:`rng_from_spec` rebuilds the *identical* stream from it
    (same bit-generator class, same entropy, same spawn key), drawing
    the same values in the same order.  Capture the spec before any
    draws — it records where the stream starts, not how far a
    particular copy has advanced.
    """

    bit_generator: str
    entropy: int
    spawn_key: tuple[int, ...]


def rng_spec(rng: np.random.Generator) -> RngSpec:  # repro-lint: ignore[R4]
    """Capture a generator's stream identity as a :class:`RngSpec`."""
    seed_seq = _seed_seq_of(rng)
    return RngSpec(
        bit_generator=type(rng.bit_generator).__name__,
        entropy=seed_seq.entropy,
        spawn_key=tuple(seed_seq.spawn_key),
    )


def spec_stream_id(spec: RngSpec) -> str:
    """The :func:`stream_id` a generator rebuilt from ``spec`` will carry.

    Lets the engine know, *before* running anything, which stream a
    task's successful attempt must have drawn from — the expectation the
    retry-replay contract checks against.
    """
    key = ".".join(str(k) for k in spec.spawn_key) or "root"
    return f"{spec.entropy:x}/{key}"


def rng_from_spec(spec: RngSpec) -> np.random.Generator:
    """Rebuild the stream a :class:`RngSpec` describes, from the start.

    Under ``REPRO_RNG_SANITIZE=1`` the rebuilt generator is a
    :class:`SanitizedGenerator`, so worker-side draws are fingerprinted
    like everything else.
    """
    bit_cls = getattr(np.random, spec.bit_generator)
    seed_seq = np.random.SeedSequence(
        entropy=spec.entropy, spawn_key=spec.spawn_key
    )
    bit_gen = bit_cls(seed_seq)
    if rng_sanitize_enabled():
        return SanitizedGenerator(bit_gen)
    return np.random.Generator(bit_gen)


@dataclass(frozen=True, order=True)
class RngFingerprint:
    """What one generator did: which stream, and how many draws.

    Produced by :meth:`SanitizedGenerator.fingerprint` and collected per
    task by ``engine.execute``.  Two fingerprints with one ``stream``
    mean two tasks shared a generator — the race the sanitizer exists to
    catch; the full per-task sequence is what the ``workers=1`` vs
    ``workers=N`` equivalence test compares.
    """

    stream: str
    draws: int


class SanitizedGenerator(np.random.Generator):
    """A :class:`numpy.random.Generator` that knows who it is.

    Behaves identically to the wrapped bit generator's stream — every
    draw method delegates to numpy after bumping a counter — and adds a
    stable :func:`stream_id` plus a draw count, exposed as
    :meth:`fingerprint`.  ``spawn`` returns sanitized children (numpy
    constructs ``type(self)``), and pickling preserves both the class
    and the counter, so fingerprints taken inside pool workers are
    faithful.

    Enable globally with ``REPRO_RNG_SANITIZE=1`` (the engine wraps task
    generators via :func:`sanitize_rng`); wrapping changes no drawn
    value, only bookkeeping.
    """

    def __init__(self, bit_generator: np.random.BitGenerator) -> None:
        """Wrap one bit generator; the draw counter starts at zero."""
        super().__init__(bit_generator)
        self._draws = 0

    @property
    def draws(self) -> int:
        """Number of stream-consuming calls made through this object."""
        return self._draws

    @property
    def stream(self) -> str:
        """This generator's stable stream id (see :func:`stream_id`)."""
        return stream_id(self)

    def fingerprint(self) -> RngFingerprint:
        """Snapshot (stream id, draw count) as a picklable record."""
        return RngFingerprint(stream=self.stream, draws=self._draws)

    def __reduce__(self):
        """Pickle as (class, bit generator, counter) — numpy's default
        reduce would come back as a plain ``Generator``."""
        return (_rebuild_sanitized, (self.bit_generator, self._draws))


def _rebuild_sanitized(
    bit_generator: np.random.BitGenerator, draws: int
) -> SanitizedGenerator:
    """Unpickle helper for :class:`SanitizedGenerator`."""
    out = SanitizedGenerator(bit_generator)
    out._draws = draws
    return out


def _counting_method(name: str):
    """Build the draw-counting override for one ``Generator`` method."""
    base = getattr(np.random.Generator, name)

    def _method(self, *args, **kwargs):
        self._draws += 1
        return base(self, *args, **kwargs)

    _method.__name__ = name
    _method.__qualname__ = f"SanitizedGenerator.{name}"
    _method.__doc__ = base.__doc__
    return _method


for _name in sorted(DRAW_METHODS):
    setattr(SanitizedGenerator, _name, _counting_method(_name))
del _name


def sanitize_rng(rng: np.random.Generator) -> SanitizedGenerator:  # repro-lint: ignore[R4]
    """Wrap a generator in a :class:`SanitizedGenerator`, sharing state.

    The wrapper adopts the same bit generator object, so the stream
    continues exactly where the original left off; an already-sanitized
    generator passes through unchanged.
    """
    if isinstance(rng, SanitizedGenerator):
        return rng
    return SanitizedGenerator(rng.bit_generator)
