"""Deterministic per-call-site work counting (``REPRO_WORK_AUDIT=1``).

The runtime half of the performance pass (R15-R19 in
:mod:`repro.lint.perf_flow`): where the static rules reason about where
work *could* go, this meter counts where it *does* go.  The hot methods
of the dynamic sparsifier and the matcher backends carry cheap counting
seams that are no-ops until a meter is installed; with one active, every
update accumulates operation counts in four categories —

``edge-touch``
    an adjacency entry read, written, or probed;
``vertex-scan``
    a vertex visited by a sweep or search;
``rng-draw``
    a batched draw from a ``Generator`` (the sanitizer counts *bits*;
    this counts *draw sites* on the hot path);
``allocation``
    a fresh container/array constructed inside the update.

— keyed by call site (``"DynamicSparsifier._remark"``), so the report
ranks exactly the loops the vectorization ROADMAP item needs to target.

Counting is deterministic and observation-free: the meter never draws
randomness, never reads a clock, and never changes control flow, so a
session's replay fingerprint is byte-identical with the audit on or off
(a test asserts this).  :func:`repro.contracts.check_work_budget`
consumes the per-update totals to verify the Theorem 3.5 cap against
*actual* counted work, not just the chunk counter.

Enable ambiently with ``REPRO_WORK_AUDIT=1`` (sessions call
:func:`enable_from_env`), or scoped with the :func:`audit` context
manager.  ``repro-experiments perf-audit --report`` drives a synthetic
update stream under :func:`audit` and writes the ranked hotspot table.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

#: Environment variable that switches ambient work auditing on.
WORK_AUDIT_ENV = "REPRO_WORK_AUDIT"

#: Values of :data:`WORK_AUDIT_ENV` treated as "on".
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: The operation categories a meter tracks.
CATEGORIES = ("edge-touch", "vertex-scan", "rng-draw", "allocation")

#: The installed meter, if any (module-level so the counting seams in
#: the hot loops are a dict lookup + add, nothing more).
_ACTIVE: "WorkMeter | None" = None


class WorkMeter:
    """Accumulates categorized op counts keyed by call site."""

    __slots__ = (
        "sites", "total_ops", "updates", "per_update_max",
        "max_observed_constant", "_mark",
    )

    def __init__(self) -> None:
        self.sites: dict[tuple[str, str], int] = {}
        self.total_ops = 0
        self.updates = 0
        self.per_update_max = 0
        self.max_observed_constant = 0.0
        self._mark = 0

    def count(self, category: str, site: str, amount: int = 1) -> None:
        """Record ``amount`` operations of ``category`` at ``site``."""
        key = (category, site)
        self.sites[key] = self.sites.get(key, 0) + amount
        self.total_ops += amount

    def begin_update(self) -> None:
        """Mark the start of one session update."""
        self._mark = self.total_ops

    def end_update(self) -> int:
        """Close one update; returns the ops counted since its start."""
        ops = self.total_ops - self._mark
        self.updates += 1
        if ops > self.per_update_max:
            self.per_update_max = ops
        return ops

    def record_constant(self, observed: float) -> None:
        """Track the largest observed work-budget constant."""
        if observed > self.max_observed_constant:
            self.max_observed_constant = observed

    def report(self) -> list[dict]:
        """Ranked hotspot rows (count desc, then site/category asc)."""
        total = self.total_ops
        rows = [
            {
                "site": site,
                "category": category,
                "count": count,
                "share": (count / total) if total else 0.0,
            }
            for (category, site), count in self.sites.items()
        ]
        rows.sort(key=lambda r: (-r["count"], r["site"], r["category"]))
        return rows

    def reset(self) -> None:
        """Drop all accumulated counts."""
        self.sites.clear()
        self.total_ops = 0
        self.updates = 0
        self.per_update_max = 0
        self.max_observed_constant = 0.0
        self._mark = 0


def active() -> WorkMeter | None:
    """The installed meter, or ``None`` when auditing is off."""
    return _ACTIVE


def work_audit_enabled() -> bool:
    """Whether ``REPRO_WORK_AUDIT`` asks for ambient auditing."""
    return os.environ.get(WORK_AUDIT_ENV, "").strip().lower() in _TRUTHY


def enable() -> WorkMeter:
    """Install (or return the already-installed) global meter."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = WorkMeter()
    return _ACTIVE


def disable() -> None:
    """Remove the global meter; counting seams become no-ops again."""
    global _ACTIVE
    _ACTIVE = None


def enable_from_env() -> WorkMeter | None:
    """Install a meter iff the environment asks for one.

    Sessions call this at construction so ``REPRO_WORK_AUDIT=1`` audits
    every served/replayed update with no code changes.
    """
    if work_audit_enabled():
        return enable()
    return _ACTIVE


@contextmanager
def audit():
    """Context manager: install a fresh meter, restore the old one.

    Yields the fresh :class:`WorkMeter`; the previously-installed meter
    (or ``None``) is put back on exit, so scoped audits compose with the
    ambient environment switch.
    """
    global _ACTIVE
    previous = _ACTIVE
    meter = WorkMeter()
    _ACTIVE = meter
    try:
        yield meter
    finally:
        _ACTIVE = previous
