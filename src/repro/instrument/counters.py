"""Operation counters used to certify asymptotic claims empirically.

The paper's sequential result (Theorem 3.1) is a statement about the number
of *adjacency-array probes*, the distributed results (Theorems 3.2/3.3)
about *rounds and messages*, and the dynamic result (Theorem 3.5) about
*work units per update*.  All of these are measured with :class:`Counter`
objects rather than wall-clock time, because Python-level constant factors
would otherwise drown the asymptotics the paper is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


class Counter:
    """A named monotone event counter.

    Parameters
    ----------
    name:
        Human-readable identifier, used when rendering experiment tables.

    Examples
    --------
    >>> c = Counter("probes")
    >>> c.add(3); c.increment(); c.value
    4
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self) -> None:
        """Add one event."""
        self.value += 1

    def add(self, amount: int) -> None:
        """Add ``amount`` events.

        Raises
        ------
        ValueError
            If ``amount`` is negative; counters are monotone.
        """
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (used between experiment trials)."""
        self.value = 0

    def merge(self, other: "Counter | int") -> "Counter":
        """Fold another counter's total into this one.

        Counters are monotone sums of events, so merging is plain
        addition — the basis of lossless cross-process aggregation in
        :mod:`repro.engine`.

        Examples
        --------
        >>> a, b = Counter("probes"), Counter("probes")
        >>> a.add(3); b.add(4); a.merge(b).value
        7
        """
        self.add(other.value if isinstance(other, Counter) else other)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, value={self.value})"


@dataclass
class CounterSet:
    """A named bundle of counters with lazy creation.

    Used by the distributed simulator (rounds / messages / bits) and the
    dynamic algorithms (work units, rebuilds) so each subsystem can expose
    a single metrics object.
    """

    counters: dict[str, Counter] = field(default_factory=dict)

    def __getitem__(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def value(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        counter = self.counters.get(name)
        return 0 if counter is None else counter.value

    def reset(self) -> None:
        """Reset every counter in the set."""
        for counter in self.counters.values():
            counter.reset()

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of all current counter values."""
        return {name: counter.value for name, counter in self.counters.items()}

    def merge(self, other: "CounterSet | Mapping[str, int]") -> "CounterSet":
        """Add every count from ``other`` into this set, creating counters
        as needed.

        This is the aggregation primitive of the parallel experiment
        engine: each worker process records probes/messages/rounds into
        its own fresh :class:`CounterSet`, and the parent merges the
        returned sets **in task order**, so totals are identical to a
        serial run and sublinearity certificates stay exact.

        Accepts another :class:`CounterSet` or any name→count mapping
        (e.g. a :meth:`snapshot` shipped across a process boundary).

        Examples
        --------
        >>> parent, worker = CounterSet(), CounterSet()
        >>> parent["probes"].add(10)
        >>> worker["probes"].add(5); worker["messages"].add(2)
        >>> parent.merge(worker).snapshot()
        {'probes': 15, 'messages': 2}
        """
        items = other.snapshot() if isinstance(other, CounterSet) else other
        for name, value in items.items():
            self[name].add(value)
        return self
