"""Minimal wall-clock timing helpers for the harnesses and the service.

This module is the package's single sanctioned home for clock reads
(lint rule R2): everything else measures time through :class:`Timer` or
:func:`now` so that wall-clock nondeterminism is confined to explicitly
instrumented measurement code and can never leak into results.
"""

from __future__ import annotations

import time


def now() -> float:
    """A monotonic timestamp in seconds (``time.perf_counter``).

    The service layer's latency accounting calls this instead of
    reading the clock directly, keeping wall-clock reads inside this
    module per lint rule R2.  Only differences between two calls are
    meaningful.
    """
    return time.perf_counter()


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self._start
