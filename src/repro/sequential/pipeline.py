"""The centralized sequential pipeline of Theorem 3.1.

Sparsify-then-match: build G_Δ in O(n·Δ) adjacency-array probes
(deterministically, via the pos-array sampler), then run a matcher on the
materialized sparsifier.  Total cost O(n·(β/ε²)·log(1/ε)) — *sublinear* in
m for dense bounded-β graphs — and, by Observation 2.10, the sharper
output-sensitive bound O(|MCM|·(β/ε²)·log(1/ε)).

The input graph is touched **only** through probe-counted O(1) accessors;
:class:`SequentialResult` reports the probe count so experiments E7/E12
can certify sublinearity (probes ≪ 2m), which is the model-level content
of the theorem independent of Python constant factors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import SamplerName, build_sparsifier
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.counters import Counter
from repro.instrument.rng import resolve_rng
from repro.matching.approx import mcm_approx
from repro.matching.blossom import mcm_exact
from repro.matching.matching import Matching

MatcherName = Literal["exact", "phases"]


@dataclass(frozen=True)
class SequentialResult:
    """Everything the sequential pipeline produced and measured.

    Attributes
    ----------
    matching:
        The (1+ε)-approximate matching of the *input* graph (all its
        edges exist in G and in G_Δ).
    delta:
        The Δ used for the sparsifier.
    probes:
        Adjacency-array probes charged to the input graph during
        sparsification — the quantity Theorem 3.1 bounds by O(n·Δ).
    sparsifier_edges:
        |E(G_Δ)|; Observation 2.10 bounds it by 2·|MCM|·(Δ+β).
    """

    matching: Matching
    delta: int
    probes: int
    sparsifier_edges: int


def approximate_matching(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    matcher: MatcherName = "exact",
    sampler: SamplerName = "pos_array",
    *,
    seed: int | None = None,
) -> SequentialResult:
    """Compute a (1+ε)-approximate MCM in sublinear probes (Theorem 3.1).

    Parameters
    ----------
    graph:
        Input graph with neighborhood independence ≤ ``beta``.
    beta, epsilon:
        Structure and quality parameters; Δ is derived via ``policy``.
    rng, seed:
        Uniform randomness keywords for the sparsifier — an existing
        generator via ``rng=`` or an integer via ``seed=`` (not both).
    policy:
        Δ policy; defaults to :meth:`DeltaPolicy.practical`.
    matcher:
        ``"exact"`` runs the blossom algorithm on G_Δ (default; G_Δ is
        small, so this is cheap and the output inherits exactly the
        sparsifier's (1+ε) factor).  ``"phases"`` runs the phase-limited
        approximate matcher at ε/2 (with the sparsifier also at ε/2, the
        composition stays within 1+ε up to second-order terms).
    sampler:
        Sparsifier sampler; ``"pos_array"`` keeps the probe bound
        deterministic, per §3.1.

    Returns
    -------
    SequentialResult
    """
    pol = policy or DeltaPolicy.practical()
    stage_eps = epsilon if matcher == "exact" else epsilon / 2.0
    delta = pol.delta(beta, stage_eps, graph.num_vertices)
    counter = Counter("probes")
    gen = resolve_rng(seed=seed, rng=rng, owner="approximate_matching")
    result = build_sparsifier(
        graph, delta, rng=gen, sampler=sampler, probe_counter=counter
    )
    if matcher == "exact":
        matching = mcm_exact(result.subgraph)
    elif matcher == "phases":
        matching = mcm_approx(result.subgraph, epsilon=stage_eps)
    else:
        raise ValueError(f"unknown matcher {matcher!r}")
    return SequentialResult(
        matching=matching,
        delta=delta,
        probes=counter.value,
        sparsifier_edges=result.subgraph.num_edges,
    )


def sublinearity_certificate(
    graph: AdjacencyArrayGraph, result: SequentialResult
) -> dict[str, float]:
    """Summarize how sublinear the run was.

    Returns a dict with the probe count, the input size 2m (the cost of
    *reading* the graph, which a linear-time algorithm must pay), and
    their ratio — the headline number of experiment E7.
    """
    input_size = 2 * graph.num_edges
    return {
        "probes": float(result.probes),
        "input_size": float(input_size),
        "probe_fraction": result.probes / input_size if input_size else 0.0,
        "delta": float(result.delta),
    }
