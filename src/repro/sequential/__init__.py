"""Sequential sublinear-time (1+ε)-approximate matching (Theorem 3.1)."""

from repro.sequential.pipeline import (
    SequentialResult,
    approximate_matching,
    sublinearity_certificate,
)
from repro.sequential.assadi_solomon import (
    AS19Result,
    as19_maximal_matching,
    count_violating_edges,
)

__all__ = [
    "AS19Result",
    "SequentialResult",
    "approximate_matching",
    "as19_maximal_matching",
    "count_violating_edges",
    "sublinearity_certificate",
]
