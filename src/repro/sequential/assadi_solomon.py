"""Assadi–Solomon-style sublinear maximal matching — the [8] baseline.

The algorithm the paper improves on: Assadi & Solomon (ICALP'19) compute
a *maximal* matching — hence a 2-approximate MCM — in O(n·log n·β)
adjacency-array probes.  We implement the algorithm's engine in their
spirit:

* process vertices in random order;
* a free vertex v draws random neighbors, matching the first free one it
  finds, giving up after a per-vertex probe budget of c·β·log n draws
  (their analysis shows that, in bounded-β graphs, a free vertex whose
  neighborhood retains a free vertex finds one within that many draws
  whp).

The output is always a valid matching; *maximality* holds with high
probability (their Theorem 1) and is **measured, not assumed**:
:func:`as19_maximal_matching` reports the number of violating edges
under a full (test-side) scan.  The E7 comparison the repository makes
is the paper's headline: same probe model, [8] pays an extra log n and
only reaches factor 2, while the sparsifier pipeline reaches 1+ε.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.counters import Counter
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


@dataclass(frozen=True)
class AS19Result:
    """Outcome of the [8]-style run.

    Attributes
    ----------
    matching:
        The computed matching (valid; maximal whp).
    probes:
        Adjacency-array probes charged.
    probe_budget_per_vertex:
        The c·β·log n cap used.
    """

    matching: Matching
    probes: int
    probe_budget_per_vertex: int


def as19_maximal_matching(
    graph: AdjacencyArrayGraph,
    beta: int,
    rng: np.random.Generator | int | None = None,
    constant: float = 4.0,
    *,
    seed: int | None = None,
) -> AS19Result:
    """Run the Assadi–Solomon-style randomized maximal matching.

    Parameters
    ----------
    graph:
        Input graph, accessed only through probe-counted O(1) accessors.
    beta:
        Neighborhood independence bound.
    rng:
        Seed or generator.
    constant:
        Multiplier c in the per-vertex budget c·β·ln(n+1).

    Returns
    -------
    AS19Result
    """
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    gen = resolve_rng(seed=seed, rng=rng, owner="as19_maximal_matching")
    counter = Counter("probes")
    counted = graph.with_probe_counter(counter)
    n = graph.num_vertices
    budget = max(1, math.ceil(constant * beta * math.log(n + 1)))
    mate = np.full(n, -1, dtype=np.int64)
    for v in gen.permutation(n):
        v = int(v)
        if mate[v] != -1:
            continue
        deg = counted.degree(v)
        if deg == 0:
            continue
        tries = min(budget, deg * 4)
        for _ in range(tries):
            u = counted.neighbor(v, int(gen.integers(deg)))
            if mate[u] == -1:
                mate[v], mate[u] = u, v
                break
    return AS19Result(
        matching=Matching(mate),
        probes=counter.value,
        probe_budget_per_vertex=budget,
    )


def count_violating_edges(graph: AdjacencyArrayGraph, matching: Matching) -> int:
    """Test-side oracle: edges with both endpoints free (full scan).

    Zero means the matching is maximal.  This reads the whole graph and
    is used only to *measure* the [8] whp-maximality claim.
    """
    free = matching.mate < 0
    return sum(1 for u, v in graph.edges() if free[u] and free[v])
