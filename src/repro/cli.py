"""Command-line entry point: regenerate any experiment table.

Usage::

    repro-experiments e1          # one experiment
    repro-experiments all         # everything (takes a while)
    repro-experiments --list      # enumerate experiment ids
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import REGISTRY


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper-claim reproduction tables (E1-E12).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (e1..e12) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub-flavored Markdown tables",
    )
    parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="also save each table to DIR/<id>.json and DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for key in sorted(REGISTRY, key=lambda k: int(k[1:])):
            doc = (REGISTRY[key].__module__ or "").rsplit(".", 1)[-1]
            print(f"{key:>4}  {doc}")
        return 0

    wanted = (
        sorted(REGISTRY, key=lambda k: int(k[1:]))
        if args.experiment == "all"
        else [args.experiment]
    )
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; use --list", file=sys.stderr)
            return 2
        table = REGISTRY[key](seed=args.seed)
        print(table.to_markdown() if args.markdown else table.render())
        print()
        if args.output is not None:
            from pathlib import Path

            from repro.io import save_table

            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            save_table(out / f"{key}.json", table)
            save_table(out / f"{key}.csv", table)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
