"""Command-line entry point: regenerate any experiment table.

Usage::

    repro-experiments e1              # one experiment
    repro-experiments e1 --workers 4  # trials fanned over 4 processes
    repro-experiments all --workers auto   # experiments run concurrently
    repro-experiments --list          # enumerate experiment ids
    repro-experiments --version       # installed package version
    repro-experiments lint src tests  # determinism/invariant linter
    repro-experiments rng-audit src   # RNG stream-flow audit (R6-R9)
    repro-experiments race-audit src/repro/service  # async audit (R10-R14)
    repro-experiments perf-audit src/repro          # perf audit (R15-R19)
    repro-experiments serve --port 8765 --journal-dir journals
    repro-experiments serve --port 8765 --shards 4 --journal-dir journals
    repro-experiments replay journals/mysession.jsonl --json
    repro-experiments replay journals --shard 2 --verify   # cluster root
    repro-experiments stats --port 8765 --json

Parallelism is deterministic: for a fixed ``--seed``, tables are
identical at any ``--workers`` value (per-trial RNGs are spawned from
the root seed before dispatch — see ``docs/ENGINE.md``).  ``serve`` /
``replay`` / ``stats`` front the dynamic-matching service
(``docs/SERVICE.md``); ``serve --shards N`` runs it as a sharded
multi-process cluster behind one router port.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro._version import package_version
from repro.experiments import REGISTRY


def _serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: run the dynamic-matching TCP server."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Serve dynamic-matching sessions over JSON-lines TCP "
                    "(see docs/SERVICE.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765,
                        help="TCP port (0 = ephemeral, printed on start)")
    parser.add_argument("--journal-dir", default=None,
                        help="write per-session replay journals to this "
                             "directory (default: journaling off)")
    parser.add_argument("--max-batch", type=int, default=32,
                        help="micro-batch size bound (default 32)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="per-session queue bound; fuller queues "
                             "reject updates with backpressure")
    parser.add_argument("--budget-ms", type=float, default=None,
                        help="default per-update latency budget in ms")
    parser.add_argument("--allow-shutdown", action="store_true",
                        help="honor the client 'shutdown' op (CI/bench)")
    parser.add_argument("--max-inflight", type=int, default=256,
                        help="per-connection pipelining bound; beyond it "
                             "the socket is not read until responses "
                             "drain (default 256)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run a sharded cluster: spawn N worker "
                             "processes and route sessions to them by "
                             "rendezvous hash (journals land in "
                             "<journal-dir>/shard-K/); default is the "
                             "single-process server")
    parser.add_argument("--window", type=int, default=64,
                        help="router->shard in-flight window per shard "
                             "(cluster mode only, default 64)")
    args = parser.parse_args(argv)

    from repro.service.metrics import DEFAULT_BUDGET_MS

    if args.shards is not None:
        from repro.cluster.runner import run_cluster

        return run_cluster(
            host=args.host, port=args.port, shards=args.shards,
            journal_dir=args.journal_dir,
            max_batch=args.max_batch, max_queue=args.max_queue,
            budget_ms=args.budget_ms,
            allow_shutdown=args.allow_shutdown,
            max_inflight=args.max_inflight,
            window=args.window,
        )

    from repro.service.server import run_server

    return run_server(
        host=args.host, port=args.port, journal_dir=args.journal_dir,
        max_batch=args.max_batch, max_queue=args.max_queue,
        budget_ms=(DEFAULT_BUDGET_MS if args.budget_ms is None
                   else args.budget_ms),
        allow_shutdown=args.allow_shutdown,
        max_inflight=args.max_inflight,
    )


def _replay_cluster_main(args) -> int:
    """Cluster-root replay: one shard (``--shard K``) or every shard."""
    import json as json_module

    from repro.cluster.replay import (
        ClusterReplayError,
        discover_shards,
        replay_shard,
        verify_cluster,
        verify_shard,
    )
    from repro.contracts import ContractViolation
    from repro.service.journal import JournalError

    try:
        if args.shard is not None:
            shards = discover_shards(args.journal)
            if args.shard not in shards:
                print(f"replay failed: no shard-{args.shard} under "
                      f"{args.journal}", file=sys.stderr)
                return 1
            runner = verify_shard if args.verify else replay_shard
            reports = runner(shards[args.shard], upto=args.upto)
            payload = {
                "shard": args.shard,
                "shards": len(shards),
                "sessions": reports,
            }
        else:
            payload = verify_cluster(args.journal, upto=args.upto)
            payload["per_shard"] = {
                str(shard): reports
                for shard, reports in payload["per_shard"].items()
            }
    except (JournalError, ContractViolation, ClusterReplayError) as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(payload, indent=2))
    elif args.shard is not None:
        print(f"shard {args.shard}/{payload['shards']}: "
              f"{len(payload['sessions'])} session(s)"
              + (" [verified]" if args.verify else ""))
        for report in payload["sessions"]:
            print(f"  {report['session']!r}: {report['seq']} updates -> "
                  f"size {report['size']}, fingerprint "
                  f"{report['fingerprint']}")
    else:
        print(f"cluster {args.journal}: {payload['shards']} shard(s), "
              f"{payload['sessions']} session(s), {payload['updates']} "
              f"update(s) [verified: byte-identical replay + placement]")
    return 0


def _replay_main(argv: list[str]) -> int:
    """The ``replay`` subcommand: rebuild sessions from journals.

    Accepts either a single ``<session>.jsonl`` journal or a cluster
    journal root (the directory holding ``shard-K/`` subdirectories).
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments replay",
        description="Deterministically replay session journals offline "
                    "and report the resulting matchings.  JOURNAL is a "
                    "<session>.jsonl file or a cluster journal root "
                    "containing shard-K/ directories.",
    )
    parser.add_argument("journal", help="path to a <session>.jsonl journal "
                                        "or a cluster journal root")
    parser.add_argument("--upto", type=int, default=None,
                        help="replay only the first N updates")
    parser.add_argument("--shard", type=int, default=None, metavar="K",
                        help="cluster roots only: replay just shard K")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report instead of a summary")
    parser.add_argument("--verify", action="store_true",
                        help="replay twice and assert byte-identity; for "
                             "a cluster root without --shard this is "
                             "implied and adds the placement check "
                             "(exit 1 on divergence)")
    args = parser.parse_args(argv)

    from pathlib import Path

    if Path(args.journal).is_dir():
        return _replay_cluster_main(args)
    if args.shard is not None:
        print("replay failed: --shard requires a cluster journal root, "
              f"got file {args.journal}", file=sys.stderr)
        return 1

    import json as json_module

    from repro.contracts import ContractViolation, check_replay_sessions
    from repro.service.journal import JournalError, replay_journal

    try:
        session = replay_journal(args.journal, upto=args.upto)
        if args.verify:
            check_replay_sessions(
                session, replay_journal(args.journal, upto=args.upto)
            )
    except (JournalError, ContractViolation) as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 1
    payload = {
        "session": session.name,
        "backend": session.backend,
        "seq": session.seq,
        "size": session.matching.size,
        "matching": session.matching_payload()["edges"],
        "fingerprint": session.fingerprint(),
    }
    if args.json:
        print(json_module.dumps(payload, indent=2))
    else:
        print(f"session {payload['session']!r} ({payload['backend']}): "
              f"{payload['seq']} updates -> matching of size "
              f"{payload['size']}, fingerprint {payload['fingerprint']}"
              + (" [verified]" if args.verify else ""))
    return 0


def _stats_main(argv: list[str]) -> int:
    """The ``stats`` subcommand: cluster-wide metrics from a live server.

    Works against both a cluster router (which merges shard stats) and
    a single-process server (which answers as a one-shard cluster).
    """
    parser = argparse.ArgumentParser(
        prog="repro-experiments stats",
        description="Fetch cluster-wide statistics (summed counters, "
                    "exact merged latency percentiles) from a running "
                    "server or cluster router.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--json", action="store_true",
                        help="emit the raw JSON payload")
    args = parser.parse_args(argv)

    import json as json_module

    from repro.service.client import ServiceClient, ServiceError

    try:
        client = ServiceClient(args.host, args.port)
        try:
            stats = client.cluster_stats()
        finally:
            client.close()
    except (OSError, ServiceError) as exc:
        print(f"stats failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(stats, indent=2, sort_keys=True))
        return 0
    latency = stats["latency"]
    print(f"shards: {stats['shards']}  sessions: {len(stats['sessions'])} "
          f"{stats.get('per_shard_sessions', [])}")
    print("counters: " + (", ".join(
        f"{name}={value}" for name, value in sorted(stats["counters"].items())
    ) or "(none)"))
    print(f"latency: n={latency['count']} p50={latency['p50_ms']}ms "
          f"p95={latency['p95_ms']}ms p99={latency['p99_ms']}ms "
          f"max={latency['max_ms']}ms over_budget={latency['over_budget']}")
    print(f"queue: depth={stats['queue']['depth']} "
          f"max_depth={stats['queue']['max_depth']}")
    return 0


def _experiment_ids() -> list[str]:
    """Registry keys in numeric order (the help text derives its e-range
    from here rather than hardcoding it)."""
    return sorted(REGISTRY, key=lambda k: int(k[1:]))


def _accepted_kwargs(fn, **candidates):
    """Keep only candidates the experiment's ``run`` signature accepts
    (and that were actually given)."""
    params = inspect.signature(fn).parameters
    return {
        name: value
        for name, value in candidates.items()
        if value is not None and name in params
    }


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # The linter is a separate subcommand with its own option set;
        # dispatch before the experiment parser sees (and rejects) it.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "rng-audit":
        from repro.lint.cli import audit_main

        return audit_main(argv[1:])
    if argv and argv[0] == "race-audit":
        from repro.lint.cli import race_audit_main

        return race_audit_main(argv[1:])
    if argv and argv[0] == "perf-audit":
        from repro.lint.cli import perf_audit_main

        return perf_audit_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "replay":
        return _replay_main(argv[1:])
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    ids = _experiment_ids()
    id_range = f"{ids[0]}..{ids[-1]}"
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the paper-claim reproduction tables "
            f"({ids[0].upper()}-{ids[-1].upper()})."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({id_range}), 'all', or the 'lint' / "
             "'rng-audit' / 'race-audit' / 'perf-audit' / 'serve' / "
             "'replay' / 'stats' subcommands",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--version", action="version",
        version=f"repro-experiments {package_version()}",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    parser.add_argument(
        "--workers", metavar="N|auto", default="1",
        help="process count for parallel execution: trials within one "
             "experiment, or whole experiments for 'all'; 'auto' = one "
             "per CPU (default 1, the serial in-process path)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override the trial count for experiments that take one "
             "(tiny values make a quick smoke run)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="override the instance-size multiplier for experiments "
             "that take one",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal completed trials to PATH and resume from it on "
             "rerun (engine-backed experiments; for 'all', one journal "
             "per experiment at PATH.<id>)",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub-flavored Markdown tables",
    )
    parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="also save each table to DIR/<id>.json and DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for key in ids:
            doc = (REGISTRY[key].__module__ or "").rsplit(".", 1)[-1]
            print(f"{key:>4}  {doc}")
        return 0

    from repro.engine import resolve_workers

    try:
        workers = resolve_workers(
            "auto" if args.workers == "auto" else int(args.workers)
        )
    except ValueError:
        print(f"invalid --workers value {args.workers!r}; "
              "use a positive integer or 'auto'", file=sys.stderr)
        return 2

    wanted = ids if args.experiment == "all" else [args.experiment]
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; use --list", file=sys.stderr)
            return 2

    if args.experiment == "all" and workers > 1:
        # Fan whole experiments out over the pool; inner trial loops stay
        # serial (workers=1) so total process count stays at N.
        from repro.engine import TrialTask, execute, run_registry_experiment

        tasks = [
            TrialTask(
                fn=run_registry_experiment,
                kwargs={
                    "key": key,
                    "seed": args.seed,
                    "params": _accepted_kwargs(
                        REGISTRY[key], trials=args.trials, scale=args.scale
                    ),
                    "checkpoint": (f"{args.checkpoint}.{key}"
                                   if args.checkpoint else None),
                },
            )
            for key in wanted
        ]
        tables = execute(tasks, workers=workers)
    else:
        tables = []
        for key in wanted:
            kwargs = {"seed": args.seed}
            kwargs.update(_accepted_kwargs(
                REGISTRY[key],
                workers=workers if workers > 1 else None,
                trials=args.trials,
                scale=args.scale,
                checkpoint=args.checkpoint,
            ))
            tables.append(REGISTRY[key](**kwargs))

    for key, table in zip(wanted, tables):
        print(table.to_markdown() if args.markdown else table.render())
        print()
        if args.output is not None:
            from pathlib import Path

            from repro.io import save_table

            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            save_table(out / f"{key}.json", table)
            save_table(out / f"{key}.csv", table)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
