"""Command-line entry point: regenerate any experiment table.

Usage::

    repro-experiments e1              # one experiment
    repro-experiments e1 --workers 4  # trials fanned over 4 processes
    repro-experiments all --workers auto   # experiments run concurrently
    repro-experiments --list          # enumerate experiment ids
    repro-experiments lint src tests  # determinism/invariant linter
    repro-experiments rng-audit src   # RNG stream-flow audit (R6-R9)

Parallelism is deterministic: for a fixed ``--seed``, tables are
identical at any ``--workers`` value (per-trial RNGs are spawned from
the root seed before dispatch — see ``docs/ENGINE.md``).
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import REGISTRY


def _experiment_ids() -> list[str]:
    """Registry keys in numeric order (the help text derives its e-range
    from here rather than hardcoding it)."""
    return sorted(REGISTRY, key=lambda k: int(k[1:]))


def _accepted_kwargs(fn, **candidates):
    """Keep only candidates the experiment's ``run`` signature accepts
    (and that were actually given)."""
    params = inspect.signature(fn).parameters
    return {
        name: value
        for name, value in candidates.items()
        if value is not None and name in params
    }


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "lint":
        # The linter is a separate subcommand with its own option set;
        # dispatch before the experiment parser sees (and rejects) it.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "rng-audit":
        from repro.lint.cli import audit_main

        return audit_main(argv[1:])
    ids = _experiment_ids()
    id_range = f"{ids[0]}..{ids[-1]}"
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the paper-claim reproduction tables "
            f"({ids[0].upper()}-{ids[-1].upper()})."
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help=f"experiment id ({id_range}), 'all', or the 'lint' / "
             "'rng-audit' subcommands",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root RNG seed (default 0)"
    )
    parser.add_argument(
        "--workers", metavar="N|auto", default="1",
        help="process count for parallel execution: trials within one "
             "experiment, or whole experiments for 'all'; 'auto' = one "
             "per CPU (default 1, the serial in-process path)",
    )
    parser.add_argument(
        "--trials", type=int, default=None,
        help="override the trial count for experiments that take one "
             "(tiny values make a quick smoke run)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="override the instance-size multiplier for experiments "
             "that take one",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="journal completed trials to PATH and resume from it on "
             "rerun (engine-backed experiments; for 'all', one journal "
             "per experiment at PATH.<id>)",
    )
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit GitHub-flavored Markdown tables",
    )
    parser.add_argument(
        "--output", metavar="DIR", default=None,
        help="also save each table to DIR/<id>.json and DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    if args.list or args.experiment is None:
        for key in ids:
            doc = (REGISTRY[key].__module__ or "").rsplit(".", 1)[-1]
            print(f"{key:>4}  {doc}")
        return 0

    from repro.engine import resolve_workers

    try:
        workers = resolve_workers(
            "auto" if args.workers == "auto" else int(args.workers)
        )
    except ValueError:
        print(f"invalid --workers value {args.workers!r}; "
              "use a positive integer or 'auto'", file=sys.stderr)
        return 2

    wanted = ids if args.experiment == "all" else [args.experiment]
    for key in wanted:
        if key not in REGISTRY:
            print(f"unknown experiment {key!r}; use --list", file=sys.stderr)
            return 2

    if args.experiment == "all" and workers > 1:
        # Fan whole experiments out over the pool; inner trial loops stay
        # serial (workers=1) so total process count stays at N.
        from repro.engine import TrialTask, execute, run_registry_experiment

        tasks = [
            TrialTask(
                fn=run_registry_experiment,
                kwargs={
                    "key": key,
                    "seed": args.seed,
                    "params": _accepted_kwargs(
                        REGISTRY[key], trials=args.trials, scale=args.scale
                    ),
                    "checkpoint": (f"{args.checkpoint}.{key}"
                                   if args.checkpoint else None),
                },
            )
            for key in wanted
        ]
        tables = execute(tasks, workers=workers)
    else:
        tables = []
        for key in wanted:
            kwargs = {"seed": args.seed}
            kwargs.update(_accepted_kwargs(
                REGISTRY[key],
                workers=workers if workers > 1 else None,
                trials=args.trials,
                scale=args.scale,
                checkpoint=args.checkpoint,
            ))
            tables.append(REGISTRY[key](**kwargs))

    for key, table in zip(wanted, tables):
        print(table.to_markdown() if args.markdown else table.render())
        print()
        if args.output is not None:
            from pathlib import Path

            from repro.io import save_table

            out = Path(args.output)
            out.mkdir(parents=True, exist_ok=True)
            save_table(out / f"{key}.json", table)
            save_table(out / f"{key}.csv", table)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
