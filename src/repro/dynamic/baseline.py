"""Deterministic dynamic maximal matching — the 2-approximation baseline.

Stands in for Barenboim–Maimon [14] (see DESIGN.md §4(3)): a deterministic
dynamic *maximal* matching whose update cost is a neighbor scan, i.e.
O(deg) — growing with density/n — against which Theorem 3.5's
O((β/ε³)·log(1/ε)) n-independent update cost is compared in E10.

Invariant after every update: the matching is maximal (no edge has both
endpoints free).  Maintenance:

* insert(u, v): match the edge iff both endpoints are free.
* delete(u, v): if the edge was matched, each endpoint scans its
  neighborhood for a free partner and rematches greedily.

Each freed endpoint either rematches or certifies all its neighbors are
matched, so maximality is restored; the scan cost is recorded per update.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.matching.matching import Matching


class DynamicMaximalMatching:
    """Deterministic dynamic maximal matching (2-approximate MCM).

    Attributes
    ----------
    graph:
        The live :class:`DynamicGraph`.
    work_log:
        Neighbor-scan operations per update (E10's baseline curve).
    """

    def __init__(self, num_vertices: int) -> None:
        self.graph = DynamicGraph(num_vertices)
        self._mate = np.full(num_vertices, -1, dtype=np.int64)
        self.work_log: list[int] = []

    # ------------------------------------------------------------------ #
    @property
    def matching(self) -> Matching:
        """The maintained maximal matching."""
        return Matching(self._mate.copy())

    def _try_rematch(self, v: int) -> int:
        """Scan v's neighbors for a free partner; returns ops spent."""
        ops = 0
        for u in self.graph.neighbors(v):
            ops += 1
            if self._mate[u] == -1:
                self._mate[v] = u
                self._mate[u] = v
                break
        return max(1, ops)

    # ------------------------------------------------------------------ #
    def update(self, op: str, u: int, v: int) -> None:
        """Apply one update, restoring maximality."""
        self.graph.apply(op, u, v)
        ops = 1
        if op == "insert":
            if self._mate[u] == -1 and self._mate[v] == -1:
                self._mate[u], self._mate[v] = v, u
        else:  # delete
            if self._mate[u] == v:
                self._mate[u] = -1
                self._mate[v] = -1
                ops += self._try_rematch(u)
                if self._mate[v] == -1:
                    ops += self._try_rematch(v)
        self.work_log.append(ops)

    def insert(self, u: int, v: int) -> None:
        """Insert edge {u, v}."""
        self.update("insert", u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge {u, v}."""
        self.update("delete", u, v)

    def max_work_per_update(self) -> int:
        """Maximum scan work in any single update."""
        return max(self.work_log, default=0)
