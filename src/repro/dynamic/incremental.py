"""Work-chunked static matching — the engine inside the windowed rebuild.

Theorem 3.5's worst-case bound comes from *simulating* the static
computation a-few-steps-per-update across a time window.  This module
provides that simulation substrate: :func:`incremental_rebuild` is a
generator that performs the full static pipeline (sample G_Δ from the
live graph → greedy matching → phase-limited blossom augmentation) while
yielding control every ~``chunk`` elementary operations.  The driver
(:class:`~repro.dynamic.lazy_rebuild.LazyRebuildMatching`) pumps a bounded
number of chunks per update, which is what makes the per-update work
deterministic and measurable.

Because the rebuild runs against the *live* graph across many updates,
edges sampled early can be deleted before completion; the driver prunes
dead edges from the finished matching, and Lemma 3.4 absorbs the loss
(at most one matched edge per deletion in the window).
"""

from __future__ import annotations

from collections import deque
from typing import Generator

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.instrument import workmeter
from repro.instrument.rng import resolve_rng

#: Yield granularity: one chunk ≈ this many elementary operations.  The
#: driver converts chunks to the per-update budget.
DEFAULT_CHUNK = 256


def _augmentation_search(
    adj: list[list[int]],
    mate: np.ndarray,
    root: int,
    parent: np.ndarray,
    base: np.ndarray,
    in_tree: np.ndarray,
    in_blossom: np.ndarray,
    ops_cap: int | None = None,
) -> tuple[int, int]:
    """One blossom BFS from ``root``; returns (free_end | -1, ops).

    Identical logic to :mod:`repro.matching.blossom`, restated over
    list-of-lists adjacency with explicit operation counting so the
    caller can charge work chunks.  ``ops_cap`` aborts the search once
    that many operations are spent — the windowed rebuild uses it to keep
    each atomic work slice O(Δ)-bounded (augmenting paths that matter are
    short and found early in the BFS; aborted long searches cost at most
    the Lemma 3.4 slack in quality, which E10 measures).
    """
    n = len(adj)
    ops = 0
    parent.fill(-1)
    base[:] = np.arange(n)
    in_tree.fill(False)
    in_tree[root] = True
    queue: deque[int] = deque([root])

    def lca(a: int, b: int) -> int:
        nonlocal ops
        seen = np.zeros(n, dtype=bool)
        v = a
        # Alternating-tree walks: each hop moves strictly rootward, so
        # both loops terminate in <= path-length <= n steps, and every
        # hop increments `ops`, charged against the caller's ops_cap.
        while True:  # repro-lint: ignore[R18]
            ops += 1
            v = int(base[v])
            seen[v] = True
            if mate[v] == -1:
                break
            v = int(parent[mate[v]])
        v = b
        while True:  # repro-lint: ignore[R18]
            ops += 1
            v = int(base[v])
            if seen[v]:
                return v
            v = int(parent[mate[v]])

    def mark_path(v: int, blossom_base: int, child: int) -> None:
        nonlocal ops
        # Bounded by the blossom path length (<= n); ops-charged hops.
        while int(base[v]) != blossom_base:  # repro-lint: ignore[R18]
            ops += 1
            in_blossom[base[v]] = True
            in_blossom[base[mate[v]]] = True
            parent[v] = child
            child = int(mate[v])
            v = int(parent[mate[v]])

    while queue:
        if ops_cap is not None and ops > ops_cap:
            return -1, ops
        v = queue.popleft()
        for to in adj[v]:
            ops += 1
            if int(base[v]) == int(base[to]) or int(mate[v]) == to:
                continue
            if to == root or (mate[to] != -1 and parent[mate[to]] != -1):
                blossom_base = lca(v, to)
                in_blossom.fill(False)
                mark_path(v, blossom_base, to)
                mark_path(to, blossom_base, v)
                ops += n
                for i in range(n):
                    if in_blossom[base[i]]:
                        base[i] = blossom_base
                        if not in_tree[i]:
                            in_tree[i] = True
                            queue.append(i)
            elif parent[to] == -1:
                parent[to] = v
                if mate[to] == -1:
                    return to, ops
                nxt = int(mate[to])
                in_tree[nxt] = True
                queue.append(nxt)
    return -1, ops


def _apply_augmentation(mate: np.ndarray, parent: np.ndarray, free_end: int) -> None:
    v = free_end
    # Walks one augmenting path root-ward: <= path-length <= n hops,
    # already charged to the search's ops_cap by the caller.
    while v != -1:  # repro-lint: ignore[R18]
        pv = int(parent[v])
        nxt = int(mate[pv])
        mate[v] = pv
        mate[pv] = v
        v = nxt


def incremental_rebuild(
    graph: DynamicGraph,
    delta: int,
    sweeps: int,
    rng: np.random.Generator | int | None = None,
    chunk: int = DEFAULT_CHUNK,
    search_cap_factor: int = 64,
    *,
    seed: int | None = None,
) -> Generator[int, None, np.ndarray]:
    """Generator running the static pipeline in ~``chunk``-op slices.

    Randomness follows the uniform convention: pass ``rng=`` (an existing
    :class:`numpy.random.Generator`) or ``seed=`` (an integer), not both.

    Yields ``1`` per consumed chunk; the final ``return`` value (via
    ``StopIteration.value``) is the mate array of the computed matching
    on the sampled sparsifier.  Stages:

    1. sample min(Δ, deg v) random incident edges per vertex (live graph);
    2. greedy maximal matching over the sampled edges;
    3. ``sweeps`` augmentation sweeps (blossom search per free root).

    Edges are validated against the live graph lazily during stages 2–3
    (a dead edge is skipped), so the result only degrades by the number
    of deletions that raced the rebuild — the Lemma 3.4 slack.
    """
    rng = resolve_rng(seed=seed, rng=rng, owner="incremental_rebuild")
    n = graph.num_vertices
    ops = 0
    # Per-iteration (not per-stage) counting so each pumped chunk's work
    # lands on the update that performed it — aggregate counts at stage
    # end would charge a whole stage to whichever update finished it.
    meter = workmeter.active()

    # ---- Stage 1: sampling (non-isolated vertices only; Lemma 2.2 makes
    # this output-sensitive: n' <= (beta+2)*|MCM|).  Vertices that gain
    # their first edge while the rebuild is in flight are missed; that
    # costs at most one matched edge per such update, inside the
    # Lemma 3.4 window slack.
    edge_set: set[tuple[int, int]] = set()
    for v in graph.non_isolated_vertices():
        # The Delta-sample must materialize its pick list (fresh
        # randomness per vertex); preallocated sample buffers are the
        # vectorization rewrite tracked in docs/PERFORMANCE.md.
        marks = graph.sample_neighbors(v, delta, rng)  # repro-lint: ignore[R17]
        ops += max(1, len(marks))
        if meter is not None:
            meter.count("vertex-scan", "incremental_rebuild.sample")
        for u in marks:
            edge_set.add((v, u) if v < u else (u, v))
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Build adjacency lists (filter edges deleted meanwhile) -------
    adj: list[list[int]] = [[] for _ in range(n)]
    if meter is not None:
        meter.count("allocation", "incremental_rebuild.build_adj")
    for u, v in edge_set:
        ops += 1
        if meter is not None:
            meter.count("edge-touch", "incremental_rebuild.build_adj")
        if graph.has_edge(u, v):
            adj[u].append(v)
            adj[v].append(u)
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Stage 2: greedy maximal matching -----------------------------
    mate = np.full(n, -1, dtype=np.int64)
    if meter is not None:
        meter.count("allocation", "incremental_rebuild.greedy")
    # Scalar by design: the greedy pass must be interruptible every
    # ~chunk ops (the whole point of this generator); the vectorized
    # rewrite (docs/PERFORMANCE.md) replaces the stage wholesale.
    for u in range(n):  # repro-lint: ignore[R15]
        if meter is not None:
            meter.count("vertex-scan", "incremental_rebuild.greedy")
        if mate[u] != -1:
            continue
        for v in adj[u]:
            ops += 1
            if meter is not None:
                meter.count("edge-touch", "incremental_rebuild.greedy")
            if mate[v] == -1 and graph.has_edge(u, v):
                mate[u], mate[v] = v, u
                break
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Stage 3: bounded augmentation sweeps -------------------------
    parent = np.full(n, -1, dtype=np.int64)
    base = np.arange(n, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_blossom = np.zeros(n, dtype=bool)
    ops_cap = search_cap_factor * delta if search_cap_factor else None
    for _ in range(sweeps):
        augmented = False
        # Scalar by design, like the greedy stage: per-root searches
        # are the chunked unit of interruptible work.
        for root in range(n):  # repro-lint: ignore[R15]
            if meter is not None:
                meter.count("vertex-scan", "incremental_rebuild.augment")
            if mate[root] != -1 or not adj[root]:
                continue
            # Each search allocates one BFS deque; scratch arrays are
            # already hoisted (parent/base/in_tree/in_blossom above) —
            # the deque joins them in the vectorization rewrite.
            end, cost = _augmentation_search(  # repro-lint: ignore[R17]
                adj, mate, root, parent, base, in_tree, in_blossom,
                ops_cap=ops_cap,
            )
            ops += cost
            if meter is not None:
                meter.count("edge-touch", "incremental_rebuild.augment",
                            max(cost, 1))
            if end != -1:
                _apply_augmentation(mate, parent, end)
                augmented = True
            while ops >= chunk:
                ops -= chunk
                yield 1
        if not augmented:
            break
    if ops > 0:
        yield 1
    return mate
