"""Work-chunked static matching — the engine inside the windowed rebuild.

Theorem 3.5's worst-case bound comes from *simulating* the static
computation a-few-steps-per-update across a time window.  This module
provides that simulation substrate: :func:`incremental_rebuild` is a
generator that performs the full static pipeline (sample G_Δ from the
live graph → greedy matching → phase-limited blossom augmentation) while
yielding control every ~``chunk`` elementary operations.  The driver
(:class:`~repro.dynamic.lazy_rebuild.LazyRebuildMatching`) pumps a bounded
number of chunks per update, which is what makes the per-update work
deterministic and measurable.

Because the rebuild runs against the *live* graph across many updates,
edges sampled early can be deleted before completion; the driver prunes
dead edges from the finished matching, and Lemma 3.4 absorbs the loss
(at most one matched edge per deletion in the window).
"""

from __future__ import annotations

from collections import deque
from typing import Generator

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.instrument.rng import resolve_rng

#: Yield granularity: one chunk ≈ this many elementary operations.  The
#: driver converts chunks to the per-update budget.
DEFAULT_CHUNK = 256


def _augmentation_search(
    adj: list[list[int]],
    mate: np.ndarray,
    root: int,
    parent: np.ndarray,
    base: np.ndarray,
    in_tree: np.ndarray,
    in_blossom: np.ndarray,
    ops_cap: int | None = None,
) -> tuple[int, int]:
    """One blossom BFS from ``root``; returns (free_end | -1, ops).

    Identical logic to :mod:`repro.matching.blossom`, restated over
    list-of-lists adjacency with explicit operation counting so the
    caller can charge work chunks.  ``ops_cap`` aborts the search once
    that many operations are spent — the windowed rebuild uses it to keep
    each atomic work slice O(Δ)-bounded (augmenting paths that matter are
    short and found early in the BFS; aborted long searches cost at most
    the Lemma 3.4 slack in quality, which E10 measures).
    """
    n = len(adj)
    ops = 0
    parent.fill(-1)
    base[:] = np.arange(n)
    in_tree.fill(False)
    in_tree[root] = True
    queue: deque[int] = deque([root])

    def lca(a: int, b: int) -> int:
        nonlocal ops
        seen = np.zeros(n, dtype=bool)
        v = a
        while True:
            ops += 1
            v = int(base[v])
            seen[v] = True
            if mate[v] == -1:
                break
            v = int(parent[mate[v]])
        v = b
        while True:
            ops += 1
            v = int(base[v])
            if seen[v]:
                return v
            v = int(parent[mate[v]])

    def mark_path(v: int, blossom_base: int, child: int) -> None:
        nonlocal ops
        while int(base[v]) != blossom_base:
            ops += 1
            in_blossom[base[v]] = True
            in_blossom[base[mate[v]]] = True
            parent[v] = child
            child = int(mate[v])
            v = int(parent[mate[v]])

    while queue:
        if ops_cap is not None and ops > ops_cap:
            return -1, ops
        v = queue.popleft()
        for to in adj[v]:
            ops += 1
            if int(base[v]) == int(base[to]) or int(mate[v]) == to:
                continue
            if to == root or (mate[to] != -1 and parent[mate[to]] != -1):
                blossom_base = lca(v, to)
                in_blossom.fill(False)
                mark_path(v, blossom_base, to)
                mark_path(to, blossom_base, v)
                ops += n
                for i in range(n):
                    if in_blossom[base[i]]:
                        base[i] = blossom_base
                        if not in_tree[i]:
                            in_tree[i] = True
                            queue.append(i)
            elif parent[to] == -1:
                parent[to] = v
                if mate[to] == -1:
                    return to, ops
                nxt = int(mate[to])
                in_tree[nxt] = True
                queue.append(nxt)
    return -1, ops


def _apply_augmentation(mate: np.ndarray, parent: np.ndarray, free_end: int) -> None:
    v = free_end
    while v != -1:
        pv = int(parent[v])
        nxt = int(mate[pv])
        mate[v] = pv
        mate[pv] = v
        v = nxt


def incremental_rebuild(
    graph: DynamicGraph,
    delta: int,
    sweeps: int,
    rng: np.random.Generator | int | None = None,
    chunk: int = DEFAULT_CHUNK,
    search_cap_factor: int = 64,
    *,
    seed: int | None = None,
) -> Generator[int, None, np.ndarray]:
    """Generator running the static pipeline in ~``chunk``-op slices.

    Randomness follows the uniform convention: pass ``rng=`` (an existing
    :class:`numpy.random.Generator`) or ``seed=`` (an integer), not both.

    Yields ``1`` per consumed chunk; the final ``return`` value (via
    ``StopIteration.value``) is the mate array of the computed matching
    on the sampled sparsifier.  Stages:

    1. sample min(Δ, deg v) random incident edges per vertex (live graph);
    2. greedy maximal matching over the sampled edges;
    3. ``sweeps`` augmentation sweeps (blossom search per free root).

    Edges are validated against the live graph lazily during stages 2–3
    (a dead edge is skipped), so the result only degrades by the number
    of deletions that raced the rebuild — the Lemma 3.4 slack.
    """
    rng = resolve_rng(seed=seed, rng=rng, owner="incremental_rebuild")
    n = graph.num_vertices
    ops = 0

    # ---- Stage 1: sampling (non-isolated vertices only; Lemma 2.2 makes
    # this output-sensitive: n' <= (beta+2)*|MCM|).  Vertices that gain
    # their first edge while the rebuild is in flight are missed; that
    # costs at most one matched edge per such update, inside the
    # Lemma 3.4 window slack.
    edge_set: set[tuple[int, int]] = set()
    for v in graph.non_isolated_vertices():
        marks = graph.sample_neighbors(v, delta, rng)
        ops += max(1, len(marks))
        for u in marks:
            edge_set.add((v, u) if v < u else (u, v))
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Build adjacency lists (filter edges deleted meanwhile) -------
    adj: list[list[int]] = [[] for _ in range(n)]
    for u, v in edge_set:
        ops += 1
        if graph.has_edge(u, v):
            adj[u].append(v)
            adj[v].append(u)
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Stage 2: greedy maximal matching -----------------------------
    mate = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        if mate[u] != -1:
            continue
        for v in adj[u]:
            ops += 1
            if mate[v] == -1 and graph.has_edge(u, v):
                mate[u], mate[v] = v, u
                break
        if ops >= chunk:
            ops = 0
            yield 1

    # ---- Stage 3: bounded augmentation sweeps -------------------------
    parent = np.full(n, -1, dtype=np.int64)
    base = np.arange(n, dtype=np.int64)
    in_tree = np.zeros(n, dtype=bool)
    in_blossom = np.zeros(n, dtype=bool)
    ops_cap = search_cap_factor * delta if search_cap_factor else None
    for _ in range(sweeps):
        augmented = False
        for root in range(n):
            if mate[root] != -1 or not adj[root]:
                continue
            end, cost = _augmentation_search(
                adj, mate, root, parent, base, in_tree, in_blossom,
                ops_cap=ops_cap,
            )
            ops += cost
            if end != -1:
                _apply_augmentation(mate, parent, end)
                augmented = True
            while ops >= chunk:
                ops -= chunk
                yield 1
        if not augmented:
            break
    if ops > 0:
        yield 1
    return mate
