"""Fully dynamic (1+ε)-approximate matching (Theorem 3.5) and baselines.

* :mod:`repro.dynamic.graph` — the dynamic adjacency substrate (O(1)
  insert / delete / uniform neighbor sample).
* :mod:`repro.dynamic.stability` — Lemma 3.4 (Gupta–Peng stability).
* :mod:`repro.dynamic.lazy_rebuild` — the Theorem 3.5 algorithm: windowed
  rebuilds, work spread per update for a deterministic worst-case bound,
  correct against an adaptive adversary.
* :mod:`repro.dynamic.dynamic_sparsifier` — O(Δ)-update maintenance of
  G_Δ itself (the oblivious-adversary warm-up of §3.3).
* :mod:`repro.dynamic.baseline` — deterministic 2-approximation baseline
  (Barenboim–Maimon surrogate, DESIGN.md §4(3)).
* :mod:`repro.dynamic.adversaries` — oblivious and adaptive update
  generators for experiment E10.
"""

from repro.dynamic.graph import DynamicGraph
from repro.dynamic.stability import stability_factor, StabilityTracker
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.dynamic.oblivious import ObliviousDynamicMatching
from repro.dynamic.dynamic_sparsifier import DynamicSparsifier
from repro.dynamic.baseline import DynamicMaximalMatching
from repro.dynamic.adversaries import (
    AdaptiveAdversary,
    ObliviousAdversary,
    Update,
)

__all__ = [
    "AdaptiveAdversary",
    "DynamicGraph",
    "DynamicMaximalMatching",
    "DynamicSparsifier",
    "LazyRebuildMatching",
    "ObliviousAdversary",
    "ObliviousDynamicMatching",
    "StabilityTracker",
    "Update",
    "stability_factor",
]
