"""The oblivious-adversary dynamic matcher — §3.3's first route.

Section 3.3 opens with the simple scheme that works against an
*oblivious* adversary: maintain the sparsifier G_Δ itself under updates
(resample the two touched endpoints, O(Δ) worst-case —
:class:`~repro.dynamic.dynamic_sparsifier.DynamicSparsifier`), and run a
dynamic (1+ε)-matching algorithm on top of it (the paper plugs in
Peleg–Solomon [77]; we substitute the same Gupta–Peng windowed-rebuild
engine used by Theorem 3.5, with the static rebuild reading the
*maintained* sparsifier instead of resampling — that reuse of stale
randomness is exactly why this variant is only oblivious-safe, the
contrast Theorem 3.5 then removes).

Update cost: O(Δ) sparsifier maintenance + a bounded number of rebuild
chunks, all recorded in :attr:`work_log`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.dynamic.dynamic_sparsifier import DynamicSparsifier
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


class ObliviousDynamicMatching:
    """Dynamic (1+ε)-matching via a maintained sparsifier (oblivious only).

    Parameters mirror :class:`~repro.dynamic.lazy_rebuild.LazyRebuildMatching`;
    the difference is that rebuilds *read the maintained G_Δ* rather than
    drawing fresh per-rebuild samples.

    Attributes
    ----------
    sparsifier:
        The incrementally maintained :class:`DynamicSparsifier`.
    work_log:
        Per-update work: sparsifier mark operations + rebuild steps.
    """

    def __init__(
        self,
        num_vertices: int,
        beta: int,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        policy: DeltaPolicy | None = None,
        chunk_edges: int = 256,
        *,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.beta = beta
        self.epsilon = epsilon
        pol = policy or DeltaPolicy.practical()
        self.delta = pol.delta(beta, epsilon / 4.0, num_vertices)
        self.sparsifier = DynamicSparsifier(
            num_vertices,
            self.delta,
            rng=resolve_rng(seed=seed, rng=rng, owner="ObliviousDynamicMatching"),
        )
        self._n = num_vertices
        self._chunk_edges = chunk_edges
        self._mate = np.full(num_vertices, -1, dtype=np.int64)
        self._rebuild = None
        self._budget = 1
        self._last_cost = 1
        self.work_log: list[int] = []
        self.rebuilds_completed = 0
        self._start_rebuild()

    # ------------------------------------------------------------------ #
    @property
    def graph(self):
        """The live dynamic graph (owned by the sparsifier)."""
        return self.sparsifier.graph

    @property
    def matching(self) -> Matching:
        """The maintained matching."""
        return Matching(self._mate.copy())

    def _window(self) -> int:
        size = int(np.count_nonzero(self._mate >= 0)) // 2
        return 1 + int(math.floor((self.epsilon / 4.0) * size))

    def _rebuild_generator(self):
        """Greedy matching over the *maintained* sparsifier edge set,
        chunked by edges scanned."""
        mate = np.full(self._n, -1, dtype=np.int64)
        scanned = 0
        for u, v in sorted(self.sparsifier.edges()):
            scanned += 1
            if (mate[u] == -1 and mate[v] == -1
                    and self.graph.has_edge(u, v)):
                mate[u], mate[v] = v, u
            if scanned % self._chunk_edges == 0:
                yield 1
        yield 1
        return mate

    def _start_rebuild(self) -> None:
        self._rebuild = self._rebuild_generator()
        self._cost = 0
        self._budget = max(1, math.ceil(self._last_cost / self._window()))

    def _pump(self) -> int:
        consumed = 0
        while consumed < self._budget:
            try:
                next(self._rebuild)
                consumed += 1
                self._cost += 1
            except StopIteration as stop:
                # Runs once per *completed rebuild* (amortized over the
                # whole update window), not per pumped chunk.
                new_mate = np.asarray(  # repro-lint: ignore[R17]
                    stop.value, dtype=np.int64
                )
                # Candidate endpoints selected vectorized; only the
                # surviving lower endpoints hit the O(1) has_edge probe.
                matched = np.flatnonzero(new_mate >= 0)
                lower = matched[matched < new_mate[matched]]
                partners = new_mate[lower]
                for v, u in zip(lower.tolist(), partners.tolist()):
                    if not self.graph.has_edge(v, u):
                        new_mate[v] = -1
                        new_mate[u] = -1
                self._mate = new_mate
                self.rebuilds_completed += 1
                self._last_cost = max(1, self._cost)
                self._start_rebuild()
                break
        return consumed

    # ------------------------------------------------------------------ #
    def update(self, op: str, u: int, v: int) -> None:
        """Apply one update: O(Δ) sparsifier maintenance + bounded rebuild."""
        self.sparsifier.update(op, u, v)
        spars_ops = self.sparsifier.work_log[-1]
        if op == "delete" and self._mate[u] == v:
            self._mate[u] = -1
            self._mate[v] = -1
        chunks = self._pump()
        self.work_log.append(spars_ops + chunks)

    def insert(self, u: int, v: int) -> None:
        """Insert edge {u, v}."""
        self.update("insert", u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge {u, v}."""
        self.update("delete", u, v)

    def max_work_per_update(self) -> int:
        """Worst per-update work units so far."""
        return max(self.work_log, default=0)
