"""Matching stability — Lemma 3.4 (Gupta–Peng [44], Lemma 3.1).

If M_i is a (1+ε)-approximate MCM of G_i and at most ⌊ε'·|M_i|⌋ updates
follow, then M_i minus its deleted edges remains a (1+2ε+2ε')-approximate
MCM of the current graph.  This is the deterministic glue that lets the
dynamic algorithm re-use a matching across a whole time window, and the
reason the adaptive adversary cannot hurt it (the guarantee does not
depend on the adversary's knowledge of the algorithm's coins).

:class:`StabilityTracker` is the executable form: it carries a matching
through updates, prunes deletions, and reports the factor Lemma 3.4
promises at each step; property tests check the promise against exact
MCM recomputation.
"""

from __future__ import annotations

import numpy as np

from repro.matching.matching import Matching


def stability_factor(epsilon: float, epsilon_prime: float) -> float:
    """The Lemma 3.4 bound 1 + 2ε + 2ε' (valid for ε, ε' ≤ 1/2)."""
    if not (0 <= epsilon <= 0.5 and 0 <= epsilon_prime <= 0.5):
        raise ValueError("Lemma 3.4 requires epsilon, epsilon_prime in [0, 1/2]")
    return 1.0 + 2.0 * epsilon + 2.0 * epsilon_prime


class StabilityTracker:
    """Carries a matching through an update window, per Lemma 3.4.

    Parameters
    ----------
    matching:
        M_i, a (1+ε)-approximate MCM of the graph at window start.
    epsilon:
        The ε for which ``matching`` was computed.

    Notes
    -----
    Call :meth:`on_delete` for every edge deletion (insertions never
    invalidate matched edges).  :meth:`guaranteed_factor` returns the
    factor Lemma 3.4 certifies after the updates seen so far, taking
    ε' = updates_seen / |M_i|.
    """

    def __init__(self, matching: Matching, epsilon: float) -> None:
        self.mate = matching.mate.copy()
        self.epsilon = epsilon
        self.initial_size = matching.size
        self.updates_seen = 0

    def on_insert(self, u: int, v: int) -> None:
        """Record an insertion (keeps the matching as-is)."""
        self.updates_seen += 1

    def on_delete(self, u: int, v: int) -> None:
        """Record a deletion; drop the edge from the matching if matched."""
        self.updates_seen += 1
        if 0 <= u < self.mate.size and self.mate[u] == v:
            self.mate[u] = -1
            self.mate[v] = -1

    @property
    def matching(self) -> Matching:
        """The carried matching M_i^{(j)} (deleted edges pruned)."""
        return Matching(self.mate.copy())

    def epsilon_prime(self) -> float:
        """ε' = updates seen / |M_i| (the lemma's window fraction)."""
        if self.initial_size == 0:
            return 0.0 if self.updates_seen == 0 else float("inf")
        return self.updates_seen / self.initial_size

    def guaranteed_factor(self) -> float:
        """The approximation factor Lemma 3.4 certifies right now.

        Returns ``inf`` once the window fraction exceeds 1/2 (the lemma's
        validity range) — the signal that a rebuild is overdue.
        """
        ep = self.epsilon_prime()
        if ep > 0.5 or self.epsilon > 0.5:
            return float("inf")
        return stability_factor(self.epsilon, ep)

    def within_window(self, epsilon_prime: float) -> bool:
        """Whether fewer than ⌊ε'·|M_i|⌋ + 1 updates have been seen."""
        return self.updates_seen <= int(np.floor(epsilon_prime * self.initial_size))
