"""The fully dynamic graph substrate.

Standard model (Section 3.3): fixed vertex set, single-edge insertions
and deletions.  Per-vertex adjacency is a dynamic array plus a position
map, giving O(1) insert, O(1) delete (swap-with-last), O(1) degree, and
O(1) uniform neighbor sampling — exactly the operations the dynamic
sparsifier maintenance and the windowed rebuilds need.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument import workmeter


class DynamicGraph:
    """A mutable undirected graph over a fixed vertex set ``0..n-1``.

    All mutators are O(1); :meth:`snapshot` (O(n+m)) materializes the
    current graph as an immutable :class:`AdjacencyArrayGraph` for
    verification and exact-matching oracles in experiments.
    """

    __slots__ = ("_adj", "_pos", "_num_edges", "_non_isolated", "version")

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
        self._adj: list[list[int]] = [[] for _ in range(num_vertices)]
        self._pos: list[dict[int, int]] = [{} for _ in range(num_vertices)]
        self._num_edges = 0
        self._non_isolated: set[int] = set()
        #: Monotone mutation counter; consumers (e.g. in-flight rebuilds)
        #: use it to detect concurrent changes.
        self.version = 0

    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def degree(self, v: int) -> int:
        """Current degree of vertex ``v``."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether edge {u, v} is currently present."""
        return v in self._pos[u]

    def neighbors(self, v: int) -> list[int]:
        """A copy of v's current neighbor list."""
        return list(self._adj[v])

    def neighbor_at(self, v: int, i: int) -> int:
        """The i-th neighbor in the internal (mutation-dependent) order."""
        return self._adj[v][i]

    # Hot-loop primitive on the update path (Theorem 3.5's per-update
    # budget): callers thread one long-lived generator through many calls,
    # so a per-call seed= resolution would add overhead and mislead.
    def sample_neighbors(  # repro-lint: ignore[R4]
        self, v: int, k: int, rng: np.random.Generator
    ) -> list[int]:
        """min(k, deg) distinct uniform random neighbors of v, O(k) time."""
        deg = len(self._adj[v])
        meter = workmeter.active()
        if meter is not None:
            meter.count("vertex-scan", "DynamicGraph.sample_neighbors")
        if deg == 0:
            return []
        if k >= deg:
            if meter is not None:
                meter.count("edge-touch", "DynamicGraph.sample_neighbors",
                            deg)
                meter.count("allocation", "DynamicGraph.sample_neighbors")
            return list(self._adj[v])
        if meter is not None:
            meter.count("rng-draw", "DynamicGraph.sample_neighbors")
            meter.count("edge-touch", "DynamicGraph.sample_neighbors", k)
            meter.count("allocation", "DynamicGraph.sample_neighbors")
        picks = rng.choice(deg, size=k, replace=False)
        return [self._adj[v][int(i)] for i in picks]

    # ------------------------------------------------------------------ #
    def insert(self, u: int, v: int) -> None:
        """Insert edge {u, v}.

        Raises
        ------
        ValueError
            On self-loops or if the edge already exists.
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {v})")
        if v in self._pos[u]:
            raise ValueError(f"edge ({u}, {v}) already present")
        for a, b in ((u, v), (v, u)):
            self._pos[a][b] = len(self._adj[a])
            self._adj[a].append(b)
        self._non_isolated.add(u)
        self._non_isolated.add(v)
        self._num_edges += 1
        self.version += 1
        meter = workmeter.active()
        if meter is not None:
            meter.count("edge-touch", "DynamicGraph.insert")

    def delete(self, u: int, v: int) -> None:
        """Delete edge {u, v} (swap-with-last, O(1)).

        Raises
        ------
        ValueError
            If the edge is not present.
        """
        if v not in self._pos[u]:
            raise ValueError(f"edge ({u}, {v}) not present")
        for a, b in ((u, v), (v, u)):
            i = self._pos[a].pop(b)
            last = self._adj[a][-1]
            self._adj[a][i] = last
            self._adj[a].pop()
            if last != b:
                self._pos[a][last] = i
        for w in (u, v):
            if not self._adj[w]:
                self._non_isolated.discard(w)
        self._num_edges -= 1
        self.version += 1
        meter = workmeter.active()
        if meter is not None:
            meter.count("edge-touch", "DynamicGraph.delete")

    def apply(self, op: str, u: int, v: int) -> None:
        """Apply an ``("insert"|"delete", u, v)`` update."""
        if op == "insert":
            self.insert(u, v)
        elif op == "delete":
            self.delete(u, v)
        else:
            raise ValueError(f"unknown update op {op!r}")

    # ------------------------------------------------------------------ #
    def non_isolated_vertices(self) -> list[int]:
        """Vertices with degree ≥ 1 (a copy; O(n') to produce).

        The windowed rebuild samples only these, which is what makes its
        total cost output-sensitive (Lemma 2.2: n' ≤ (β+2)·|MCM|).
        """
        return sorted(self._non_isolated)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate current edges once each as (u, v) with u < v."""
        for u, nbrs in enumerate(self._adj):
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def snapshot(self) -> AdjacencyArrayGraph:
        """Immutable copy of the current graph (O(n+m))."""
        return from_edges(self.num_vertices, list(self.edges()))
