"""Dynamic maintenance of G_Δ with O(Δ) worst-case update time.

The oblivious-adversary warm-up at the start of Section 3.3: after every
update touching (u, v), discard the ≤ 2Δ edges currently marked *due to*
u and due to v, and re-mark Δ fresh random incident edges for each.  The
marks of all other vertices are untouched, so the joint distribution of
per-vertex marks stays "fresh uniform" at all times — against an
oblivious adversary, the proof of Theorem 2.1 applies verbatim to the
maintained sparsifier.

Edges are reference-counted (an edge is in G_Δ while at least one
endpoint marks it), so membership updates are O(1) per mark.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.graph import DynamicGraph
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument import workmeter
from repro.instrument.rng import resolve_rng


class DynamicSparsifier:
    """Maintains G_Δ of a :class:`DynamicGraph` under edge updates.

    Parameters
    ----------
    num_vertices:
        Fixed vertex set size.
    delta:
        Marks per vertex.
    rng:
        Seed or generator.

    Attributes
    ----------
    graph:
        The live graph (mutated via :meth:`update`).
    work_log:
        Elementary mark operations per update (≤ ~4Δ each; experiment
        E10's sparsifier-maintenance panel plots the maximum).
    """

    def __init__(
        self,
        num_vertices: int,
        delta: int,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.graph = DynamicGraph(num_vertices)
        self.delta = delta
        self._rng = resolve_rng(seed=seed, rng=rng, owner="DynamicSparsifier")
        self._marks: list[set[int]] = [set() for _ in range(num_vertices)]
        self._edge_refs: dict[tuple[int, int], int] = {}
        self.work_log: list[int] = []

    # ------------------------------------------------------------------ #
    def _edge(self, u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    def _unmark_all(self, v: int) -> int:
        ops = 0
        for u in self._marks[v]:
            ops += 1
            e = self._edge(v, u)
            self._edge_refs[e] -= 1
            if self._edge_refs[e] == 0:
                del self._edge_refs[e]
        self._marks[v].clear()
        meter = workmeter.active()
        if meter is not None:
            meter.count("vertex-scan", "DynamicSparsifier._unmark_all")
            meter.count("edge-touch", "DynamicSparsifier._unmark_all",
                        max(ops, 1))
        return ops

    def _remark(self, v: int) -> int:
        ops = 0
        fresh = self.graph.sample_neighbors(v, self.delta, self._rng)
        for u in fresh:
            ops += 1
            self._marks[v].add(u)
            e = self._edge(v, u)
            self._edge_refs[e] = self._edge_refs.get(e, 0) + 1
        meter = workmeter.active()
        if meter is not None:
            meter.count("vertex-scan", "DynamicSparsifier._remark")
            meter.count("edge-touch", "DynamicSparsifier._remark",
                        max(ops, 1))
        return max(1, ops)

    # ------------------------------------------------------------------ #
    def update(self, op: str, u: int, v: int) -> None:
        """Apply one update; resample marks of both endpoints (O(Δ))."""
        self.graph.apply(op, u, v)
        ops = self._unmark_all(u) + self._unmark_all(v)
        ops += self._remark(u) + self._remark(v)
        self.work_log.append(ops)

    def insert(self, u: int, v: int) -> None:
        """Insert edge {u, v}."""
        self.update("insert", u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge {u, v}."""
        self.update("delete", u, v)

    # ------------------------------------------------------------------ #
    def marks(self, v: int) -> frozenset[int]:
        """The neighbors currently marked due to v."""
        return frozenset(self._marks[v])

    def edges(self) -> set[tuple[int, int]]:
        """Current E(G_Δ) as normalized pairs."""
        return set(self._edge_refs)

    def sparsifier(self) -> AdjacencyArrayGraph:
        """Materialize the current G_Δ (O(n + |E_Δ|))."""
        return from_edges(self.graph.num_vertices, sorted(self._edge_refs))

    def max_work_per_update(self) -> int:
        """Maximum mark operations in any single update."""
        return max(self.work_log, default=0)
