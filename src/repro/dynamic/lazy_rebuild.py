"""The fully dynamic (1+ε)-approximate matching of Theorem 3.5.

Scheme (Section 3.3, after Gupta–Peng [44]): maintain an output matching
M computed by a recent static run; re-use it across a *time window* of
1 + ⌊(ε/4)·|M|⌋ updates (Lemma 3.4 keeps it (1+ε)-approximate, pruning
deleted edges); meanwhile, simulate the next static computation a bounded
number of work chunks per update, and swap it in when it completes.

Key properties reproduced and measured:

* **Deterministic worst-case update work.**  Every update performs O(1)
  bookkeeping plus at most ``chunks_per_update`` chunks of the simulated
  rebuild; the exact chunk count is recorded per update
  (:attr:`work_log`), and experiment E10 reports its maximum.
* **Adaptive-adversary safety.**  The output matching visible to the
  adversary is always a *finished, deterministic-from-here* object; the
  randomness of the in-progress rebuild never influences the output
  until the swap, and Lemma 3.4's guarantee is deterministic.  The
  adversary can therefore adapt all it wants — experiment E10 runs one
  that targets matched edges.

The per-update chunk budget is self-tuned: each completed rebuild records
its total chunk cost T and the next window's budget is ⌈T / W⌉ with
W = 1 + ⌊(ε/4)·|M|⌋ — the paper's "simulate T/W steps per update",
with T estimated by the previous run instead of an a-priori bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.delta import DeltaPolicy
from repro.dynamic.graph import DynamicGraph
from repro.dynamic.incremental import DEFAULT_CHUNK, incremental_rebuild
from repro.instrument import workmeter
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


class LazyRebuildMatching:
    """Maintains a (1+ε)-approximate MCM under fully dynamic updates.

    Parameters
    ----------
    num_vertices:
        Size of the fixed vertex set.
    beta:
        Neighborhood-independence bound the update stream promises.
    epsilon:
        Target approximation slack (the static runs use ε/4 per the
        paper's scaling argument).
    rng:
        Seed or generator for the sparsifier sampling inside rebuilds.
    policy:
        Δ policy (default practical).
    chunk:
        Elementary operations per work chunk (see
        :mod:`repro.dynamic.incremental`).
    max_chunks_per_update:
        Optional *hard* cap on per-update work, enforcing the theorem's
        budget literally.  With a cap, a rebuild that would need more
        than cap·window chunks simply finishes later; the matching
        quality degrades gracefully (Lemma 3.4's guarantee stretches)
        and is measured, never assumed.  Default: uncapped (the
        self-tuned ⌈T/W⌉ budget only).

    Attributes
    ----------
    graph:
        The live :class:`DynamicGraph` (mutated by :meth:`update`).
    work_log:
        Chunks of rebuild work performed at each update — the quantity
        whose maximum Theorem 3.5 bounds.
    rebuilds_completed:
        Number of static rebuilds swapped in so far.
    """

    def __init__(
        self,
        num_vertices: int,
        beta: int,
        epsilon: float,
        rng: np.random.Generator | int | None = None,
        policy: DeltaPolicy | None = None,
        chunk: int = DEFAULT_CHUNK,
        max_chunks_per_update: int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
        self.graph = DynamicGraph(num_vertices)
        self.beta = beta
        self.epsilon = epsilon
        self._static_eps = epsilon / 4.0
        self._policy = policy or DeltaPolicy.practical()
        self.delta = self._policy.delta(beta, self._static_eps, num_vertices)
        self._sweeps = math.ceil(1.0 / self._static_eps) + 1
        self._rng = resolve_rng(seed=seed, rng=rng, owner="LazyRebuildMatching")
        self._chunk = chunk
        if max_chunks_per_update is not None and max_chunks_per_update < 1:
            raise ValueError("max_chunks_per_update must be >= 1")
        self._max_chunks = max_chunks_per_update

        self._mate = np.full(num_vertices, -1, dtype=np.int64)
        self._rebuild = None
        self._rebuild_chunks = 0
        self._last_rebuild_cost = 1
        self._budget = 1
        self.work_log: list[int] = []
        self.rebuilds_completed = 0
        self._start_rebuild()

    # ------------------------------------------------------------------ #
    @property
    def matching(self) -> Matching:
        """The currently maintained matching (always valid in the graph)."""
        return Matching(self._mate.copy())

    def _window(self) -> int:
        size = int(np.count_nonzero(self._mate >= 0)) // 2
        return 1 + int(math.floor((self.epsilon / 4.0) * size))

    def _start_rebuild(self) -> None:
        self._rebuild = incremental_rebuild(
            self.graph,
            self.delta,
            self._sweeps,
            self._rng.spawn(1)[0],
            chunk=self._chunk,
        )
        self._rebuild_chunks = 0
        self._budget = max(1, math.ceil(self._last_rebuild_cost / self._window()))
        if self._max_chunks is not None:
            self._budget = min(self._budget, self._max_chunks)

    def _pump(self) -> int:
        """Advance the in-progress rebuild by ≤ budget chunks; swap on
        completion.  Returns chunks consumed."""
        consumed = 0
        while consumed < self._budget:
            try:
                next(self._rebuild)
                consumed += 1
                self._rebuild_chunks += 1
            except StopIteration as stop:
                # Runs once per *completed rebuild* (amortized over the
                # whole update window), not per pumped chunk.
                new_mate = np.asarray(  # repro-lint: ignore[R17]
                    stop.value, dtype=np.int64
                )
                # Prune edges deleted while the rebuild was in flight.
                # Candidate endpoints are selected vectorized (one pass
                # over the mate array); only the surviving lower
                # endpoints hit the O(1) has_edge probe.
                matched = np.flatnonzero(new_mate >= 0)
                lower = matched[matched < new_mate[matched]]
                partners = new_mate[lower]
                for v, u in zip(lower.tolist(), partners.tolist()):
                    if not self.graph.has_edge(v, u):
                        new_mate[v] = -1
                        new_mate[u] = -1
                meter = workmeter.active()
                if meter is not None:
                    meter.count("edge-touch", "LazyRebuildMatching.prune",
                                max(int(lower.size), 1))
                self._mate = new_mate
                self.rebuilds_completed += 1
                self._last_rebuild_cost = max(1, self._rebuild_chunks)
                self._start_rebuild()
                break
        return consumed

    # ------------------------------------------------------------------ #
    def update(self, op: str, u: int, v: int) -> None:
        """Apply one edge update and do the bounded per-update work."""
        self.graph.apply(op, u, v)
        if op == "delete" and self._mate[u] == v:
            self._mate[u] = -1
            self._mate[v] = -1
        self.work_log.append(self._pump())

    def insert(self, u: int, v: int) -> None:
        """Insert edge {u, v}."""
        self.update("insert", u, v)

    def delete(self, u: int, v: int) -> None:
        """Delete edge {u, v}."""
        self.update("delete", u, v)

    # ------------------------------------------------------------------ #
    def max_work_per_update(self) -> int:
        """Maximum chunks consumed by any single update so far."""
        return max(self.work_log, default=0)

    def current_ratio(self) -> float:
        """Exact approximation ratio right now (oracle; for experiments).

        Computes |MCM(G)| on a snapshot — expensive, test/bench use only.
        """
        from repro.matching.blossom import mcm_exact

        opt = mcm_exact(self.graph.snapshot()).size
        size = self.matching.size
        if opt == 0:
            return 1.0
        if size == 0:
            return float("inf")
        return opt / size
