"""Update-stream adversaries for the dynamic experiments (E10).

* :class:`ObliviousAdversary` — fixes its update sequence independently
  of the algorithm's behaviour (it only tracks the graph state its own
  updates imply, which is public).
* :class:`AdaptiveAdversary` — sees the algorithm's *current output
  matching* before every update and preferentially deletes matched edges,
  the classic attack that breaks oblivious-only randomized algorithms.
  Theorem 3.5's algorithm is claimed safe against exactly this; E10
  measures the maintained approximation factor under it.

Both generate updates over a fixed vertex set, optionally restricted to a
bounded-β *host* edge universe (so the dynamic graph stays inside the
graph family the algorithms assume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching


@dataclass(frozen=True)
class Update:
    """One edge update: ``op`` is ``"insert"`` or ``"delete"``."""

    op: str
    u: int
    v: int


class _UniverseState:
    """Shared bookkeeping: which universe edges are currently present."""

    def __init__(self, universe: Iterable[tuple[int, int]],
                 rng: np.random.Generator) -> None:
        edges = sorted({(min(u, v), max(u, v)) for u, v in universe if u != v})
        if not edges:
            raise ValueError("edge universe must be non-empty")
        self.universe = edges
        self.present: set[tuple[int, int]] = set()
        self.rng = rng

    def absent(self) -> list[tuple[int, int]]:
        return [e for e in self.universe if e not in self.present]

    def random_insert(self) -> Update | None:
        pool = self.absent()
        if not pool:
            return None
        e = pool[int(self.rng.integers(len(pool)))]
        self.present.add(e)
        return Update("insert", *e)

    def random_delete(self) -> Update | None:
        if not self.present:
            return None
        pool = sorted(self.present)
        e = pool[int(self.rng.integers(len(pool)))]
        self.present.remove(e)
        return Update("delete", *e)

    def delete_specific(self, e: tuple[int, int]) -> Update:
        self.present.remove(e)
        return Update("delete", *e)


class ObliviousAdversary:
    """Random insert/delete stream over a fixed edge universe.

    Parameters
    ----------
    universe:
        Allowed edges (e.g. the edge set of a bounded-β host graph).
    delete_probability:
        Chance of attempting a deletion at each step (when edges exist).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        universe: Iterable[tuple[int, int]],
        delete_probability: float = 0.3,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= delete_probability <= 1.0:
            raise ValueError("delete_probability must lie in [0, 1]")
        self._state = _UniverseState(
            universe, resolve_rng(seed=seed, rng=rng, owner="ObliviousAdversary")
        )
        self.delete_probability = delete_probability

    def preload(self, edges: Iterable[tuple[int, int]]) -> None:
        """Mark ``edges`` as already present (warm-started experiments)."""
        self._state.present.update(
            (min(u, v), max(u, v)) for u, v in edges
        )

    def next_update(self) -> Update | None:
        """The next update, or None if no move is possible."""
        state = self._state
        if state.present and state.rng.random() < self.delete_probability:
            return state.random_delete()
        return state.random_insert() or state.random_delete()

    def stream(self, length: int) -> list[Update]:
        """Pre-generate ``length`` updates (the oblivious modus operandi)."""
        out = []
        for _ in range(length):
            upd = self.next_update()
            if upd is None:
                break
            out.append(upd)
        return out


class AdaptiveAdversary:
    """Adversary that observes the output matching and attacks it.

    At each step, with probability ``attack_probability`` it deletes a
    *currently matched* edge (if any exists inside the universe);
    otherwise it behaves like the oblivious adversary.

    Parameters
    ----------
    universe:
        Allowed edges.
    observe:
        Callable returning the algorithm's current :class:`Matching` —
        the adaptivity channel.
    attack_probability:
        Chance of targeting a matched edge each step.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        universe: Iterable[tuple[int, int]],
        observe: Callable[[], Matching],
        attack_probability: float = 0.5,
        rng: np.random.Generator | int | None = None,
        *,
        seed: int | None = None,
    ) -> None:
        if not 0.0 <= attack_probability <= 1.0:
            raise ValueError("attack_probability must lie in [0, 1]")
        self._state = _UniverseState(
            universe, resolve_rng(seed=seed, rng=rng, owner="AdaptiveAdversary")
        )
        self._observe = observe
        self.attack_probability = attack_probability
        self.attacks = 0

    def preload(self, edges: Iterable[tuple[int, int]]) -> None:
        """Mark ``edges`` as already present (warm-started experiments)."""
        self._state.present.update(
            (min(u, v), max(u, v)) for u, v in edges
        )

    def next_update(self) -> Update | None:
        """The next update, chosen after observing the current matching."""
        state = self._state
        if state.rng.random() < self.attack_probability:
            matched = [
                (min(u, v), max(u, v)) for u, v in self._observe().edges()
            ]
            live = [e for e in matched if e in state.present]
            if live:
                self.attacks += 1
                e = live[int(state.rng.integers(len(live)))]
                return state.delete_specific(e)
        if state.present and state.rng.random() < 0.3:
            return state.random_delete()
        return state.random_insert() or state.random_delete()
