"""repro.cluster — the sharded multi-process matching service.

Scales :mod:`repro.service` past one process: a front-end
:class:`~repro.cluster.router.ClusterRouter` speaks the unchanged
``repro-service-v1`` protocol and fans sessions out over ``N`` shard
workers, each a full single-process
:class:`~repro.service.server.MatchingService` in its own OS process
with its own journal directory (``journals/shard-K/``).  The paper's
structure is what makes this shard cleanly: every update touches only
one session's sparsifier state, so per-session placement gives
shared-nothing parallelism without giving up the per-session total
update order that deterministic replay requires.

The moving parts:

* :mod:`~repro.cluster.hashing` — rendezvous (HRW) placement: a pure
  function of ``(session, num_shards)``, stable under resizing;
* :mod:`~repro.cluster.link` — one bounded-window FIFO connection per
  shard (backpressure propagates client ← router ← shard);
* :mod:`~repro.cluster.router` — byte-for-byte request routing plus
  fan-out cluster ops (``sessions``, ``shard_stats``,
  ``cluster_stats``);
* :mod:`~repro.cluster.metrics` — exact cross-shard aggregation:
  counters sum, latency percentiles are nearest-rank over the *union*
  of per-shard sorted samples (never averaged percentiles);
* :mod:`~repro.cluster.supervisor` — worker process lifecycle
  (spawn, announce-parse, health-check, SIGTERM graceful stop);
* :mod:`~repro.cluster.runner` — ``serve --shards N`` foreground entry
  and the :class:`~repro.cluster.runner.BackgroundCluster` harness;
* :mod:`~repro.cluster.replay` — shard-aware offline verification:
  byte-identical replay per shard plus placement-consistency checks.

See ``docs/SERVICE.md`` (sharding section) for the operational story.
"""

from repro.cluster.hashing import place, placement_map, rendezvous_score
from repro.cluster.link import ShardError, ShardLink
from repro.cluster.metrics import (
    aggregate_cluster_stats,
    merge_counters,
    merge_latency,
    merge_sorted_samples,
)
from repro.cluster.replay import (
    ClusterReplayError,
    discover_shards,
    replay_shard,
    shard_sessions,
    verify_cluster,
    verify_shard,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.runner import BackgroundCluster, run_cluster
from repro.cluster.supervisor import (
    ClusterError,
    ClusterSupervisor,
    shard_journal_dir,
)

__all__ = [
    "BackgroundCluster",
    "ClusterError",
    "ClusterReplayError",
    "ClusterRouter",
    "ClusterSupervisor",
    "ShardError",
    "ShardLink",
    "aggregate_cluster_stats",
    "discover_shards",
    "merge_counters",
    "merge_latency",
    "merge_sorted_samples",
    "place",
    "placement_map",
    "rendezvous_score",
    "replay_shard",
    "run_cluster",
    "shard_journal_dir",
    "shard_sessions",
    "verify_cluster",
    "verify_shard",
]
