"""One router→shard connection: FIFO correlation, bounded in-flight window.

A :class:`ShardLink` multiplexes every routed request for one shard
over a single TCP connection.  The shard answers *in request order* on
a connection (the ``repro-service-v1`` contract), so correlation needs
no request ids: a bounded FIFO queue of pending futures is popped as
response lines arrive.

The queue bound is the link's **in-flight window**: at most ``window``
requests may be awaiting shard responses; further senders wait on the
queue (FIFO), which propagates backpressure from a slow shard up to
the router's per-client pipelining cap — and from there, by the
router not reading the client socket, to TCP itself.  Shard-level
admission rejections (the ``backpressure`` error code) are ordinary
responses and pass through to the client verbatim.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.protocol import encode


class ShardError(RuntimeError):
    """The shard connection is down (refused, reset, or closed).

    Attributes
    ----------
    code:
        Stable protocol error code (``shard-unavailable``) the router
        maps this to.
    """

    def __init__(self, message: str) -> None:
        """Record what made the shard unreachable."""
        super().__init__(message)
        self.code = "shard-unavailable"


class ShardLink:
    """Router-side connection to one shard worker (see module docstring).

    Parameters
    ----------
    shard_id:
        Shard index (used in error messages and stats).
    host, port:
        The worker's listening address.
    window:
        In-flight window: the most requests awaiting responses on this
        link at once.
    """

    def __init__(self, shard_id: int, host: str, port: int,
                 window: int = 64) -> None:
        """Record the address; call :meth:`connect` inside a loop."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.window = window
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        # Bounded at the window: senders block on put() when the shard
        # has `window` responses outstanding (R13 discipline).
        self._pending: asyncio.Queue = asyncio.Queue(maxsize=window)
        self._lock = asyncio.Lock()
        self._receiver: asyncio.Task | None = None
        self._dead = False

    async def connect(self) -> None:
        """Open the TCP connection and start the response receiver."""
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        except OSError as exc:
            raise ShardError(
                f"shard {self.shard_id} at {self.host}:{self.port} "
                f"unreachable: {exc}"
            ) from exc
        self._receiver = asyncio.get_running_loop().create_task(
            self._receive()
        )

    # ------------------------------------------------------------------ #
    async def request(self, raw: bytes) -> bytes:
        """Forward one encoded request line; await its response line.

        Raw bytes in, raw bytes out: pass-through routing never
        re-encodes, so the shard's response (including any client
        ``id`` echo) reaches the client byte-for-byte.
        """
        if self._dead or self._writer is None:
            raise ShardError(f"shard {self.shard_id} link is down")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        async with self._lock:
            # The lock serializes writers, so pending-queue order ==
            # socket write order == shard response order (FIFO
            # correlation); waiters acquire in task-creation order, so
            # one client connection's updates keep their order.
            writer = self._writer
            if self._dead or writer is None:
                raise ShardError(f"shard {self.shard_id} link is down")
            await self._pending.put(future)
            writer.write(raw)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                # The receiver observes the same death and fails every
                # pending future; fall through to awaiting ours.
                pass
        if self._dead and not future.done():
            # Closes the race where the receiver drained the pending
            # queue before our put landed.
            future.set_exception(
                ShardError(f"shard {self.shard_id} link is down")
            )
        return await future

    async def call(self, request: dict) -> dict:
        """Encode, forward, and decode one request (fan-out ops)."""
        return json.loads(await self.request(encode(request)))

    # ------------------------------------------------------------------ #
    async def _receive(self) -> None:
        try:
            while True:
                assert self._reader is not None
                line = await self._reader.readline()
                if not line:
                    break
                future = self._pending.get_nowait()
                if not future.done():
                    future.set_result(line)
        except (ConnectionResetError, asyncio.QueueEmpty):
            pass
        finally:
            self._dead = True
            self._fail_pending()

    def _fail_pending(self) -> None:
        while True:
            try:
                future = self._pending.get_nowait()
            except asyncio.QueueEmpty:
                return
            if not future.done():
                future.set_exception(
                    ShardError(f"shard {self.shard_id} connection closed")
                )

    @property
    def alive(self) -> bool:
        """Whether the link is connected and serving."""
        return self._writer is not None and not self._dead

    async def close(self) -> None:
        """Close the connection and fail anything still pending."""
        self._dead = True
        receiver, self._receiver = self._receiver, None
        if receiver is not None:
            receiver.cancel()
            try:
                await receiver
            except asyncio.CancelledError:
                pass
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
        self._fail_pending()
