"""Cross-shard metrics aggregation: counter sums and exact percentiles.

Counters are monotone event totals, so summing them across shards is
lossless (the same argument as the engine's cross-process counter
merge).  Latency percentiles are **not** summable — averaging per-shard
p99s under-reports any skewed tail — so shards export their raw sample
lists *sorted ascending* (``shard_stats``) and this module k-way merges
the sorted lists (:func:`merge_sorted_samples`) before taking
nearest-rank percentiles over the union, which is exactly the number a
single server holding every sample would report.
"""

from __future__ import annotations

from heapq import merge as _heapq_merge
from typing import Iterable, Mapping, Sequence

from repro.service.metrics import percentile_sorted


def merge_counters(per_shard: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum per-shard counter snapshots into one cluster-wide snapshot.

    Missing keys count as zero, so shards that never touched a counter
    (an empty shard, a shard with no rejected updates) merge cleanly.
    """
    totals: dict[str, int] = {}
    for counters in per_shard:
        for name in sorted(counters):
            totals[name] = totals.get(name, 0) + int(counters[name])
    return totals


def merge_sorted_samples(
    per_shard: Sequence[Sequence[float]],
) -> list[float]:
    """Union per-shard *sorted* sample lists into one sorted list.

    A k-way heap merge (O(N log k)) — cheaper than re-sorting the
    concatenation and, more importantly, the statement of intent: the
    cluster percentile is taken over the union of samples, never over
    per-shard percentiles.
    """
    return list(_heapq_merge(*per_shard))


def merge_latency(
    per_shard: Sequence[Mapping[str, object]],
) -> dict:
    """Merge per-shard ``shard_stats`` latency payloads exactly.

    Each element carries ``samples_sorted_ms`` (sorted ascending),
    ``over_budget``, and ``budget_ms``.  The merged summary reports
    nearest-rank p50/p95/p99/max over the sample union, the summed
    ``over_budget`` count, and the *tightest* (minimum) budget — the
    conservative SLO when shards were configured differently.  With no
    samples anywhere (an idle or empty cluster) the percentiles are 0.
    """
    merged = merge_sorted_samples(
        [list(shard.get("samples_sorted_ms", ())) for shard in per_shard]
    )
    budgets = [float(shard["budget_ms"])
               for shard in per_shard if "budget_ms" in shard]
    if merged:
        p50 = percentile_sorted(merged, 50.0)
        p95 = percentile_sorted(merged, 95.0)
        p99 = percentile_sorted(merged, 99.0)
        peak = merged[-1]
    else:
        p50 = p95 = p99 = peak = 0.0
    return {
        "count": len(merged),
        "p50_ms": round(p50, 4),
        "p95_ms": round(p95, 4),
        "p99_ms": round(p99, 4),
        "max_ms": round(peak, 4),
        "budget_ms": min(budgets) if budgets else 0.0,
        "over_budget": sum(int(shard.get("over_budget", 0))
                           for shard in per_shard),
    }


def aggregate_cluster_stats(per_shard: Sequence[Mapping]) -> dict:
    """Fold per-shard ``shard_stats`` payloads into the cluster view.

    ``per_shard[k]`` is shard ``k``'s ``shard_stats`` response payload.
    The result is what the ``cluster_stats`` op returns: shard count,
    total/ per-shard session placement, summed counters, union-merged
    latency percentiles, and summed queue gauges.  Works for zero
    shards (an unstarted cluster) and for shards with no sessions.
    """
    session_lists = [list(shard.get("sessions", ())) for shard in per_shard]
    return {
        "shards": len(per_shard),
        "sessions": sorted(name for names in session_lists for name in names),
        "per_shard_sessions": [len(names) for names in session_lists],
        "counters": merge_counters(
            [shard.get("counters", {}) for shard in per_shard]
        ),
        "latency": merge_latency(
            [shard.get("latency", {}) for shard in per_shard]
        ),
        "queue": {
            "depth": sum(int(shard.get("queue", {}).get("depth", 0))
                         for shard in per_shard),
            "max_depth": max(
                [int(shard.get("queue", {}).get("max_depth", 0))
                 for shard in per_shard],
                default=0,
            ),
        },
    }
