"""Shard-aware offline replay: verify a whole cluster's journals.

A cluster journals under one root::

    journals/
      shard-0/  alpha.jsonl  delta.jsonl
      shard-1/  beta.jsonl
      ...

Each per-session journal is an ordinary ``repro-service-journal-v1``
file — sharding changes *where* a journal lives, never its format — so
single-session replay (:func:`repro.service.journal.replay_journal`)
works file-by-file.  What the cluster layer adds:

* :func:`discover_shards` / :func:`shard_sessions` walk the layout;
* :func:`verify_shard` replays every session in one shard twice and
  asserts byte-identity (:func:`repro.contracts.check_replay_sessions`:
  sequence number, mate-array bytes, matching fingerprint, and — under
  ``REPRO_RNG_SANITIZE=1`` — RNG stream fingerprints);
* :func:`verify_cluster` does that for *every* shard and additionally
  checks **placement consistency**: each session found under
  ``shard-K`` must rendezvous-hash to ``K``
  (:func:`repro.cluster.hashing.place`), i.e. the journals really were
  written by the router that claims this layout.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.cluster.hashing import place
from repro.contracts import check_replay_sessions
from repro.service.journal import replay_journal

#: How a shard journal directory is named under the cluster root.
SHARD_DIR_RE = re.compile(r"^shard-(\d+)$")


class ClusterReplayError(RuntimeError):
    """The cluster journal layout is inconsistent (not a replay diff)."""


def discover_shards(root: str | Path) -> dict[int, Path]:
    """Map shard id -> journal directory under the cluster ``root``.

    Raises :class:`ClusterReplayError` when ``root`` holds no shard
    directories or the ids are not contiguous from 0 (a partial copy —
    placement checks would silently pass against the wrong shard
    count).
    """
    root = Path(root)
    shards: dict[int, Path] = {}
    if root.is_dir():
        for entry in sorted(root.iterdir()):
            match = SHARD_DIR_RE.match(entry.name)
            if match and entry.is_dir():
                shards[int(match.group(1))] = entry
    if not shards:
        raise ClusterReplayError(
            f"{root}: no shard-K journal directories found"
        )
    expected = list(range(len(shards)))
    if sorted(shards) != expected:
        raise ClusterReplayError(
            f"{root}: shard ids {sorted(shards)} are not contiguous "
            f"from 0; refusing to guess the cluster size"
        )
    return shards


def shard_sessions(shard_dir: str | Path) -> list[Path]:
    """The per-session journal files in one shard directory, sorted."""
    return sorted(Path(shard_dir).glob("*.jsonl"))


def replay_shard(shard_dir: str | Path, upto: int | None = None) -> list[dict]:
    """Replay every session in one shard once (no identity check).

    Returns the same report shape as :func:`verify_shard`; use that
    when you want the byte-identity assertion too.
    """
    reports = []
    for journal_path in shard_sessions(shard_dir):
        session = replay_journal(journal_path, upto=upto)
        reports.append({
            "session": session.name,
            "journal": str(journal_path),
            "seq": session.seq,
            "size": session.matching.size,
            "fingerprint": session.fingerprint(),
        })
    return reports


def verify_shard(shard_dir: str | Path, upto: int | None = None) -> list[dict]:
    """Replay every session in one shard twice; assert byte-identity.

    Returns one report entry per session (name, update count, matching
    size, fingerprint).  An empty shard — valid under rendezvous
    placement — returns an empty list.  Divergence raises
    :class:`repro.contracts.ContractViolation`.
    """
    reports = []
    for journal_path in shard_sessions(shard_dir):
        session = replay_journal(journal_path, upto=upto)
        check_replay_sessions(session, replay_journal(journal_path, upto=upto))
        reports.append({
            "session": session.name,
            "journal": str(journal_path),
            "seq": session.seq,
            "size": session.matching.size,
            "fingerprint": session.fingerprint(),
        })
    return reports


def verify_cluster(root: str | Path, upto: int | None = None) -> dict:
    """Verify every shard under ``root`` plus placement consistency.

    Returns a cluster report::

        {"shards": K,
         "sessions": N,
         "updates": total update count,
         "per_shard": {0: [session reports...], ...}}

    Raises :class:`ClusterReplayError` on a misplaced session (a
    journal under ``shard-K`` whose name does not hash to ``K``),
    :class:`repro.contracts.ContractViolation` on replay divergence.
    """
    shards = discover_shards(root)
    num_shards = len(shards)
    per_shard: dict[int, list[dict]] = {}
    for shard_id in sorted(shards):
        reports = verify_shard(shards[shard_id], upto=upto)
        for report in reports:
            expected = place(report["session"], num_shards)
            if expected != shard_id:
                raise ClusterReplayError(
                    f"session {report['session']!r} journaled under "
                    f"shard-{shard_id} but rendezvous-places on shard "
                    f"{expected} of {num_shards} — wrong shard count or "
                    "a foreign journal"
                )
        per_shard[shard_id] = reports
    return {
        "shards": num_shards,
        "sessions": sum(len(reports) for reports in per_shard.values()),
        "updates": sum(report["seq"] for reports in per_shard.values()
                       for report in reports),
        "per_shard": per_shard,
    }
