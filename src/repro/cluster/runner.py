"""Running a whole cluster: blocking CLI entry and in-thread harness.

:func:`run_cluster` is what ``repro-experiments serve --shards N``
calls: spawn the shard workers (:class:`ClusterSupervisor`), run the
:class:`ClusterRouter` in the foreground until SIGTERM/SIGINT or a
client ``shutdown``, then stop the workers gracefully and report a
composite exit code.  :class:`BackgroundCluster` is the tests' and
benchmarks' counterpart of :class:`~repro.service.server.BackgroundServer`:
real worker *processes*, but the router on a daemon thread and the
whole thing a context manager.
"""

from __future__ import annotations

import asyncio
import sys
import threading
from pathlib import Path

from repro.cluster.router import ClusterRouter
from repro.cluster.supervisor import ClusterSupervisor
from repro.service.server import _run_service_loop

#: How often the foreground supervisor polls for dead workers (seconds).
_WATCH_INTERVAL = 1.0


async def _watch_workers(supervisor: ClusterSupervisor,
                         router: ClusterRouter) -> None:
    """Shut the router down if any shard worker process dies."""
    while True:
        await asyncio.sleep(_WATCH_INTERVAL)
        dead = supervisor.dead_shards()
        if dead:
            print(
                "shard worker(s) died unexpectedly: "
                + ", ".join(str(shard) for shard in dead),
                file=sys.stderr,
            )
            router.request_shutdown()
            return


def run_cluster(
    host: str = "127.0.0.1",
    port: int = 8765,
    shards: int = 2,
    journal_dir: str | Path | None = None,
    max_batch: int = 32,
    max_queue: int = 1024,
    budget_ms: float | None = None,
    allow_shutdown: bool = False,
    max_inflight: int = 256,
    window: int = 64,
) -> int:
    """Blocking entry point for ``repro-experiments serve --shards N``.

    Spawns ``shards`` worker processes (journaling under
    ``<journal_dir>/shard-K/``), routes client traffic to them until a
    shutdown (signal or, when ``allow_shutdown``, the protocol op), then
    SIGTERMs the workers and waits for their graceful exits.  Returns 0
    only when every worker exited 0 and none died mid-run.
    """
    import signal as _signal

    supervisor = ClusterSupervisor(
        shards=shards,
        journal_dir=journal_dir,
        host="127.0.0.1",
        max_batch=max_batch,
        max_queue=max_queue,
        budget_ms=budget_ms,
        max_inflight=max_inflight,
    )
    supervisor.start()
    worker_died = False

    router = ClusterRouter(
        supervisor.addresses(),
        window=window,
        max_inflight=max_inflight,
        allow_shutdown=allow_shutdown,
    )

    async def main() -> None:
        nonlocal worker_died
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, router.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        watcher = loop.create_task(_watch_workers(supervisor, router))
        try:
            await router.serve_forever(host, port, announce=True)
        finally:
            if watcher.done() and not watcher.cancelled():
                worker_died = True
            watcher.cancel()
            try:
                await watcher
            except asyncio.CancelledError:
                pass
            for signum in installed:
                loop.remove_signal_handler(signum)

    try:
        try:
            _run_service_loop(main())
        except KeyboardInterrupt:  # pragma: no cover - interactive use
            print("interrupted; shutting down", file=sys.stderr)
    finally:
        codes = supervisor.stop()
    if worker_died or any(code != 0 for code in codes):
        return 1
    return 0


class BackgroundCluster:
    """A full cluster behind one ephemeral port (tests/benchmarks).

    Real shard worker *processes* plus the router on a daemon thread::

        with BackgroundCluster(shards=2, journal_dir=tmp) as cluster:
            client = ServiceClient(cluster.host, cluster.port)
            ...

    Entry blocks until every worker announced, passed a ping
    health-check, and the router is listening; exit shuts the router
    down, then SIGTERMs the workers and records their
    :attr:`worker_exit_codes` (graceful workers exit 0 with journals
    flushed, so replay is valid immediately after the ``with`` block).
    """

    def __init__(self, shards: int = 2,
                 journal_dir: str | Path | None = None,
                 window: int = 64, **worker_config) -> None:
        """Store the topology; nothing starts until ``__enter__``."""
        self.supervisor = ClusterSupervisor(
            shards=shards, journal_dir=journal_dir, **worker_config
        )
        self.window = window
        self.router: ClusterRouter | None = None
        self.host: str | None = None
        self.port: int | None = None
        self.worker_exit_codes: list[int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()

            def ready(host: str, port: int) -> None:
                self.host, self.port = host, port
                self._ready.set()

            assert self.router is not None
            await self.router.serve_forever(on_ready=ready)

        _run_service_loop(main())

    def __enter__(self) -> "BackgroundCluster":
        """Start workers, then the router thread; block until listening."""
        self.supervisor.start()
        try:
            self.router = ClusterRouter(
                self.supervisor.addresses(),
                window=self.window,
                allow_shutdown=True,
            )
            self._thread.start()
            if not self._ready.wait(timeout=30):  # pragma: no cover
                raise RuntimeError("background cluster failed to start")
        except Exception:
            self.supervisor.stop()
            raise
        return self

    def __exit__(self, *exc: object) -> None:
        """Stop the router, then the workers; record their exit codes."""
        if self._loop is not None and self.router is not None:
            try:
                self._loop.call_soon_threadsafe(self.router.request_shutdown)
            except RuntimeError:
                # Loop already closed: the router shut down on its own
                # (client-issued shutdown or a dead worker) — fine.
                pass
        self._thread.join(timeout=30)
        self.worker_exit_codes = self.supervisor.stop()
