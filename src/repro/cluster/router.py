"""The cluster front-end: one TCP endpoint, sessions fanned over shards.

:class:`ClusterRouter` speaks the same ``repro-service-v1`` wire
protocol as a single :class:`~repro.service.server.MatchingService`, so
every existing client, the load generator, and the benchmarks work
unchanged against a cluster.  Per request:

* **session ops** (``create``, updates, queries, ``close``) are placed
  by rendezvous hashing of the session name
  (:func:`repro.cluster.hashing.place`) and forwarded *byte-for-byte*
  over the shard's :class:`~repro.cluster.link.ShardLink` — responses
  (including ``id`` echoes and shard-side error codes such as
  ``backpressure``) pass through verbatim;
* **cluster ops** (``ping``, ``sessions``, ``shard_stats``,
  ``cluster_stats``, ``shutdown``) are answered by the router itself,
  fanning out to every shard where needed and merging
  (:func:`repro.cluster.metrics.aggregate_cluster_stats`).

Determinism is preserved by construction: a session's updates all flow
through one shard link (placement is a pure function of the name) and
each link serializes writes, so every session still sees one total
update order — exactly what its per-shard journal records and replay
needs.  A downed shard surfaces as the ``shard-unavailable`` error
code on requests routed to it; other shards keep serving.
"""

from __future__ import annotations

import asyncio

from repro.cluster.hashing import place
from repro.cluster.link import ShardError, ShardLink
from repro.service import protocol
from repro.service.protocol import (
    ProtocolError,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.server import pipe_connection

#: Ops forwarded to the session's home shard (everything naming a
#: session, including ``create`` — creation *is* placement).
ROUTED_OPS = frozenset(protocol.SESSION_OPS | {"create"})


class ClusterRouter:
    """Routes ``repro-service-v1`` requests onto shard workers.

    Parameters
    ----------
    shard_addresses:
        ``[(host, port), ...]`` of the shard workers, indexed by shard
        id — the order must match the workers' journal directories
        (``shard-0``, ``shard-1``, …).
    window:
        Per-shard in-flight window (see :class:`ShardLink`).
    max_inflight:
        Per-client-connection pipelining bound (same meaning as the
        single-process server's).
    allow_shutdown:
        Whether the client ``shutdown`` op stops the router.
    """

    def __init__(
        self,
        shard_addresses: list[tuple[str, int]],
        window: int = 64,
        max_inflight: int = 256,
        allow_shutdown: bool = False,
    ) -> None:
        """Build one link per shard; nothing connects until served."""
        if not shard_addresses:
            raise ValueError("a cluster needs at least one shard")
        self.links = [
            ShardLink(shard_id, host, port, window=window)
            for shard_id, (host, port) in enumerate(shard_addresses)
        ]
        self.max_inflight = max_inflight
        self.allow_shutdown = allow_shutdown
        self._shutdown = asyncio.Event()

    @property
    def num_shards(self) -> int:
        """How many shards the router fans out over."""
        return len(self.links)

    async def connect(self) -> None:
        """Open every shard link (raises :class:`ShardError` on any)."""
        for link in self.links:
            await link.connect()

    # ------------------------------------------------------------------ #
    # Dispatch                                                           #
    # ------------------------------------------------------------------ #
    def link_for(self, session: str) -> ShardLink:
        """The home shard link of ``session`` (pure placement)."""
        return self.links[place(session, self.num_shards)]

    async def _fan_out(self, request: dict) -> list[dict | ShardError]:
        """Send ``request`` to every shard; per-shard result or error."""
        outcomes = await asyncio.gather(
            *(link.call(dict(request)) for link in self.links),
            return_exceptions=True,
        )
        results: list[dict | ShardError] = []
        for shard_id, outcome in enumerate(outcomes):
            if isinstance(outcome, ShardError):
                results.append(outcome)
            elif isinstance(outcome, BaseException):
                results.append(ShardError(
                    f"shard {shard_id} fan-out failed: {outcome}"
                ))
            else:
                results.append(outcome)
        return results

    async def handle_cluster_op(self, request: dict) -> dict:
        """Answer one router-local (non-routed) op."""
        op = request["op"]
        if op == "ping":
            return ok_response(
                protocol=protocol.PROTOCOL,
                cluster={"shards": self.num_shards},
            )
        if op == "shutdown":
            if not self.allow_shutdown:
                raise ProtocolError(
                    "shutdown-disabled",
                    "router was started without allow_shutdown",
                )
            self._shutdown.set()
            return ok_response(shutting_down=True, shards=self.num_shards)
        if op == "sessions":
            fanned = await self._fan_out({"op": "sessions"})
            names: list[str] = []
            for outcome in fanned:
                if isinstance(outcome, dict):
                    names.extend(outcome.get("sessions", ()))
            return ok_response(sessions=sorted(names))
        if op in ("shard_stats", "cluster_stats"):
            fanned = await self._fan_out({"op": "shard_stats"})
            shards = [outcome for outcome in fanned if isinstance(outcome, dict)]
            unreachable = [shard_id for shard_id, outcome in enumerate(fanned)
                           if not isinstance(outcome, dict)]
            if op == "shard_stats":
                return ok_response(
                    shards=[{"shard": shard_id, **outcome}
                            for shard_id, outcome in enumerate(fanned)
                            if isinstance(outcome, dict)],
                    unreachable=unreachable,
                )
            from repro.cluster.metrics import aggregate_cluster_stats

            merged = aggregate_cluster_stats(shards)
            merged["shards"] = self.num_shards
            merged["unreachable"] = unreachable
            return ok_response(**merged)
        raise ProtocolError("unknown-op", f"unhandled cluster op {op!r}")

    async def _respond(self, line: str) -> bytes:
        """Route or answer one raw request line; returns the response line."""
        request_id = None
        try:
            request = parse_request(line)
            request_id = request.get("id")
            if request["op"] in ROUTED_OPS:
                # Byte-for-byte pass-through: the shard's response
                # already carries any id echo.
                return await self.link_for(request["session"]).request(
                    line.encode("utf-8")
                )
            response = await self.handle_cluster_op(request)
        except ProtocolError as exc:
            response = error_response(exc.code, str(exc))
        except ShardError as exc:
            response = error_response(exc.code, str(exc))
        except Exception as exc:  # pragma: no cover - defensive
            response = error_response("internal", f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            response["id"] = request_id
        return encode(response)

    # ------------------------------------------------------------------ #
    # Transport                                                          #
    # ------------------------------------------------------------------ #
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one client connection (bounded in-order pipelining)."""
        await pipe_connection(reader, writer, self._respond, self.max_inflight)

    def request_shutdown(self) -> None:
        """Ask a running :meth:`serve_forever` to stop (call via
        ``loop.call_soon_threadsafe`` from other threads)."""
        self._shutdown.set()

    async def serve_forever(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        announce: bool = False,
        on_ready=None,
    ) -> None:
        """Connect the shard links, bind, serve until shutdown, clean up.

        Mirrors :meth:`MatchingService.serve_forever`: ``port=0`` binds
        an ephemeral port, ``on_ready(host, port)`` fires once
        listening, and shutdown closes the listener before the links —
        no new connections are admitted while the cluster drains.
        """
        await self.connect()
        server = await asyncio.start_server(self.handle_connection, host, port)
        bound_host, bound_port = server.sockets[0].getsockname()[:2]
        if announce:
            print(f"repro-cluster router listening on "
                  f"{bound_host}:{bound_port} ({self.num_shards} shards)",
                  flush=True)
        if on_ready is not None:
            on_ready(bound_host, bound_port)
        async with server:
            await self._shutdown.wait()
        for link in self.links:
            await link.close()
