"""Consistent session placement: rendezvous (highest-random-weight) hashing.

The router must map every session name onto one of ``num_shards``
workers such that

* the mapping is a **pure function** of ``(name, num_shards)`` — any
  router restart, replica, or offline tool (shard-aware replay, the
  placement check in :mod:`repro.cluster.replay`) computes the same
  placement with no shared state;
* it is **stable under resizing**: going from ``K`` to ``K+1`` shards
  moves only the ~``1/(K+1)`` fraction of sessions whose new shard wins
  the rendezvous — sessions never shuffle among surviving shards (the
  classic HRW property, vs. ``hash(name) % K`` which moves almost
  everything).

Scores are the first 8 bytes of ``sha256(name "|" shard)`` — a keyed
deterministic hash, *not* Python's salted ``hash()`` (which varies per
process and would silently break cross-process agreement).
"""

from __future__ import annotations

from hashlib import sha256

#: Bytes of the sha256 digest used as the rendezvous score (64 bits is
#: far beyond any realistic tie probability).
_SCORE_BYTES = 8


def rendezvous_score(session: str, shard: int) -> int:
    """The deterministic 64-bit HRW score of ``session`` on ``shard``."""
    digest = sha256(f"{session}|{shard}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SCORE_BYTES], "big")


def place(session: str, num_shards: int) -> int:
    """The shard index ``session`` lives on in a ``num_shards`` cluster.

    The highest-scoring shard wins; a (cryptographically improbable)
    score tie breaks toward the lower shard index so the function stays
    total and deterministic.

    Raises
    ------
    ValueError
        If ``num_shards`` is not positive.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return 0
    best_shard = 0
    best_score = rendezvous_score(session, 0)
    for shard in range(1, num_shards):
        score = rendezvous_score(session, shard)
        if score > best_score:
            best_shard, best_score = shard, score
    return best_shard


def placement_map(sessions: list[str], num_shards: int) -> dict[int, list[str]]:
    """Group ``sessions`` by their placed shard (all shards present).

    Convenience for tests, the scaling bench, and capacity summaries;
    every shard index appears as a key even when empty.
    """
    groups: dict[int, list[str]] = {k: [] for k in range(num_shards)}
    for session in sessions:
        groups[place(session, num_shards)].append(session)
    return groups
