"""Shard worker lifecycle: spawn, health-check, supervise, stop cleanly.

Each shard worker is a full single-process
:class:`~repro.service.server.MatchingService` run as a **separate OS
process** (``python -m repro.cli serve``) — shared-nothing, its own
event loop, its own GIL, its own journal directory
(``<journal_dir>/shard-K/``).  That is the whole point of the cluster:
per-session work is local to one shard (the sparsifier touches only
the endpoints' sampled neighborhoods), so aggregate throughput scales
with worker processes while each session keeps the single total update
order its replay journal needs.

Workers bind ephemeral ports and announce them on stdout; the
supervisor parses the announce line, health-checks each worker with a
protocol ``ping``, and stops them with SIGTERM — which the server
handles gracefully (drain micro-batches, flush + close journals, exit
0), so a supervised stop never loses a journaled update.
"""

from __future__ import annotations

import os
import re
import select
import signal
import subprocess
import sys
from pathlib import Path

import repro
from repro.instrument.timers import now
from repro.service.client import ServiceClient

#: What a worker prints once listening (``announce=True`` in
#: ``MatchingService.serve_forever``).
_ANNOUNCE_RE = re.compile(
    r"repro-service listening on (?P<host>[0-9a-zA-Z_.:-]+):(?P<port>\d+)"
)


class ClusterError(RuntimeError):
    """A shard worker failed to start, died, or would not stop."""


class ShardWorker:
    """One spawned shard process and its parsed listening address.

    Attributes
    ----------
    shard_id:
        Index of this shard (also names its journal subdirectory).
    process:
        The underlying :class:`subprocess.Popen`.
    host, port:
        The worker's announced listening address (set by
        :meth:`ClusterSupervisor.start`).
    journal_dir:
        The worker's journal directory, or ``None`` when journaling is
        off.
    """

    def __init__(self, shard_id: int, process: subprocess.Popen,
                 journal_dir: Path | None) -> None:
        """Record the freshly-spawned (not yet announced) worker."""
        self.shard_id = shard_id
        self.process = process
        self.journal_dir = journal_dir
        self.host: str | None = None
        self.port: int | None = None

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None


def shard_journal_dir(journal_root: str | Path, shard_id: int) -> Path:
    """The per-shard journal directory: ``<root>/shard-<K>``."""
    return Path(journal_root) / f"shard-{shard_id}"


def _worker_env() -> dict[str, str]:
    """The spawn environment: inherit, but guarantee ``repro`` imports.

    Tests and benchmarks often run from a source tree (``PYTHONPATH=src``)
    rather than an installed package; prepending the package's parent
    directory makes ``python -m repro.cli`` work in both layouts.
    """
    env = dict(os.environ)
    package_parent = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_parent not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_parent + (os.pathsep + existing if existing else "")
        )
    return env


class ClusterSupervisor:
    """Spawns and manages ``shards`` worker processes.

    Parameters
    ----------
    shards:
        Number of worker processes.
    journal_dir:
        Cluster journal root; worker ``K`` journals into
        ``<journal_dir>/shard-K/``.  ``None`` disables journaling.
    host:
        Interface the workers bind (ephemeral ports).
    max_batch, max_queue, budget_ms, max_inflight:
        Forwarded to every worker's ``serve`` flags.

    Usage::

        with ClusterSupervisor(shards=4, journal_dir="journals") as sup:
            addresses = sup.addresses()   # [(host, port), ...]
            ...
    """

    def __init__(
        self,
        shards: int,
        journal_dir: str | Path | None = None,
        host: str = "127.0.0.1",
        max_batch: int = 32,
        max_queue: int = 1024,
        budget_ms: float | None = None,
        max_inflight: int = 256,
    ) -> None:
        """Validate the shape; no processes spawn until :meth:`start`."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.host = host
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.budget_ms = budget_ms
        self.max_inflight = max_inflight
        self.workers: list[ShardWorker] = []

    # ------------------------------------------------------------------ #
    def _spawn(self, shard_id: int) -> ShardWorker:
        journal_dir = None
        command = [
            sys.executable, "-m", "repro.cli", "serve",
            "--host", self.host, "--port", "0",
            "--max-batch", str(self.max_batch),
            "--max-queue", str(self.max_queue),
            "--max-inflight", str(self.max_inflight),
        ]
        if self.budget_ms is not None:
            command += ["--budget-ms", str(self.budget_ms)]
        if self.journal_dir is not None:
            journal_dir = shard_journal_dir(self.journal_dir, shard_id)
            # Eager creation: an empty shard (rendezvous placed no
            # sessions on it) still leaves its shard-K directory, so the
            # on-disk layout always records the true cluster size and
            # offline replay can verify placement against it.
            journal_dir.mkdir(parents=True, exist_ok=True)
            command += ["--journal-dir", str(journal_dir)]
        process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            env=_worker_env(),
        )
        return ShardWorker(shard_id, process, journal_dir)

    def _await_announce(self, worker: ShardWorker, deadline: float) -> None:
        """Parse the worker's announce line (with a hard deadline)."""
        stdout = worker.process.stdout
        assert stdout is not None
        buffer = ""
        while True:
            remaining = deadline - now()
            if remaining <= 0:
                raise ClusterError(
                    f"shard {worker.shard_id} never announced its port"
                )
            if worker.process.poll() is not None:
                raise ClusterError(
                    f"shard {worker.shard_id} exited with code "
                    f"{worker.process.returncode} before announcing"
                )
            ready, _, _ = select.select([stdout], [], [], min(remaining, 0.2))
            if not ready:
                continue
            chunk = stdout.readline()
            if not chunk:
                continue
            buffer += chunk
            match = _ANNOUNCE_RE.search(buffer)
            if match:
                worker.host = match.group("host")
                worker.port = int(match.group("port"))
                return

    def start(self, timeout: float = 30.0) -> None:
        """Spawn every worker, await announces, ping each one.

        Raises :class:`ClusterError` (after stopping anything already
        spawned) if any worker fails to come up healthy in ``timeout``
        seconds.
        """
        deadline = now() + timeout
        try:
            self.workers = [self._spawn(k) for k in range(self.shards)]
            for worker in self.workers:
                self._await_announce(worker, deadline)
            self.health_check()
        except Exception:
            self.stop()
            raise

    def addresses(self) -> list[tuple[str, int]]:
        """``[(host, port), ...]`` indexed by shard id."""
        if len(self.workers) != self.shards:
            raise ClusterError("cluster is not started")
        return [(worker.host or self.host, int(worker.port or 0))
                for worker in self.workers]

    def health_check(self) -> None:
        """Protocol-level liveness: ``ping`` every worker once.

        Raises :class:`ClusterError` naming every unhealthy shard.
        """
        unhealthy = []
        for worker in self.workers:
            try:
                client = ServiceClient(worker.host or self.host,
                                       int(worker.port or 0))
                try:
                    client.ping()
                finally:
                    client.close()
            except (OSError, RuntimeError) as exc:
                unhealthy.append(f"shard {worker.shard_id}: {exc}")
        if unhealthy:
            raise ClusterError("unhealthy shards: " + "; ".join(unhealthy))

    def dead_shards(self) -> list[int]:
        """Shard ids whose worker process has exited (non-blocking)."""
        return [worker.shard_id for worker in self.workers
                if not worker.alive]

    # ------------------------------------------------------------------ #
    def stop(self, timeout: float = 15.0) -> list[int]:
        """Stop every worker gracefully; returns their exit codes.

        SIGTERM first — the server's graceful path (drain, flush
        journals, exit 0) — escalating to SIGKILL only for a worker
        that ignores it past ``timeout``.
        """
        for worker in self.workers:
            if worker.alive:
                worker.process.send_signal(signal.SIGTERM)
        codes: list[int] = []
        deadline = now() + timeout
        for worker in self.workers:
            try:
                worker.process.wait(timeout=max(0.1, deadline - now()))
            except subprocess.TimeoutExpired:  # pragma: no cover - hang guard
                worker.process.kill()
                worker.process.wait()
            if worker.process.stdout is not None:
                worker.process.stdout.close()
            codes.append(int(worker.process.returncode))
        return codes

    def __enter__(self) -> "ClusterSupervisor":
        """Start the cluster on entry."""
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        """Stop the cluster on exit."""
        self.stop()
