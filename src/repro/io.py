"""Persistence: graphs to ``.npz``, matchings and tables to JSON/CSV.

Experiment campaigns want reusable workloads and machine-readable
results; this module provides the (deliberately boring) serialization
layer.  Graphs round-trip through their CSR arrays; matchings through
their mate arrays; tables to JSON (full fidelity) or CSV (spreadsheet
fodder).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.experiments.tables import Table
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.matching.matching import Matching


def save_graph(path: str | Path, graph: AdjacencyArrayGraph) -> None:
    """Write a graph's CSR arrays to ``path`` (``.npz``)."""
    np.savez_compressed(path, indptr=graph.indptr, indices=graph.indices)


def load_graph(path: str | Path) -> AdjacencyArrayGraph:
    """Read a graph written by :func:`save_graph`.

    Raises
    ------
    ValueError
        If the file lacks the expected arrays or they are inconsistent
        (validation is re-run by the constructor).
    """
    with np.load(path) as data:
        if "indptr" not in data or "indices" not in data:
            raise ValueError(f"{path} is not a saved graph (missing arrays)")
        return AdjacencyArrayGraph(data["indptr"], data["indices"])


def save_matching(path: str | Path, matching: Matching) -> None:
    """Write a matching's mate array to ``path`` (``.npz``)."""
    np.savez_compressed(path, mate=matching.mate)


def load_matching(path: str | Path) -> Matching:
    """Read a matching written by :func:`save_matching`."""
    with np.load(path) as data:
        if "mate" not in data:
            raise ValueError(f"{path} is not a saved matching")
        return Matching(data["mate"])


def _jsonable(value):
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def table_to_json(table: Table) -> str:
    """Serialize a result table to a JSON document."""
    return json.dumps(
        {
            "title": table.title,
            "headers": table.headers,
            "rows": [[_jsonable(v) for v in row] for row in table.rows],
            "notes": table.notes,
        },
        indent=2,
    )


def table_from_json(document: str) -> Table:
    """Reconstruct a :class:`Table` from :func:`table_to_json` output."""
    data = json.loads(document)
    table = Table(title=data["title"], headers=data["headers"],
                  notes=data.get("notes", []))
    for row in data["rows"]:
        table.add_row(*row)
    return table


def save_table(path: str | Path, table: Table) -> None:
    """Write a table to ``path``: ``.json`` or ``.csv`` by suffix."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(table_to_json(table))
    elif path.suffix == ".csv":
        with path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.headers)
            for row in table.rows:
                writer.writerow([_jsonable(v) for v in row])
    else:
        raise ValueError(f"unsupported table format: {path.suffix!r}")
