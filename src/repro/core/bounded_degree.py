"""Solomon's ITCS'18 bounded-degree sparsifier for bounded-arboricity graphs.

Given a graph of arboricity ≤ α, every vertex marks Δ_α = Θ(α/ε)
*arbitrary* incident edges, and the sparsifier keeps exactly the edges
marked by **both** endpoints.  This yields a (1+ε)-matching sparsifier of
maximum degree ≤ Δ_α (Section 3.2).  Two deliberate contrasts with G_Δ,
both exercised by experiment E11:

* it is deterministic — any Δ_α marks work in bounded-arboricity graphs,
  whereas Lemma 2.13 shows deterministic marking fails for bounded-β;
* it keeps mutually-marked edges only — which caps the degree, but the
  same trick destroys matchings in bounded-β graphs (e.g. a clique).
"""

from __future__ import annotations

import math

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges

#: Default multiplier in Δ_α = ceil(c·α/ε).  Solomon's analysis gives a
#: Θ(α/ε) threshold; c = 4 keeps the quality loss well under ε on every
#: family in experiment E11.
SOLOMON_CONSTANT: float = 4.0


def solomon_degree_bound(arboricity: int, epsilon: float,
                         constant: float = SOLOMON_CONSTANT) -> int:
    """Δ_α = ⌈c·α/ε⌉, the marks-per-vertex (= max degree) parameter."""
    if arboricity < 1:
        raise ValueError(f"arboricity must be >= 1, got {arboricity}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(1, math.ceil(constant * arboricity / epsilon))


def solomon_sparsifier(
    graph: AdjacencyArrayGraph,
    arboricity: int,
    epsilon: float,
    constant: float = SOLOMON_CONSTANT,
) -> AdjacencyArrayGraph:
    """The bounded-degree (1+ε)-matching sparsifier of [81].

    Each vertex marks its first Δ_α adjacency-array entries ("arbitrary"
    per the paper — determinism is the point); an edge survives iff both
    endpoints marked it.  The result has maximum degree ≤ Δ_α.

    Parameters
    ----------
    graph:
        Input graph, assumed to have arboricity ≤ ``arboricity``.
    arboricity:
        The arboricity bound α (for G_Δ inputs, 2Δ by Observation 2.12).
    epsilon:
        Approximation slack.

    Returns
    -------
    AdjacencyArrayGraph
        The sparsifier, on the same vertex set.
    """
    bound = solomon_degree_bound(arboricity, epsilon, constant)
    n = graph.num_vertices
    marked: list[set[int]] = []
    for v in range(n):
        nbrs = graph.neighbors_array(v)
        marked.append({int(u) for u in nbrs[:bound]})
    edges = [
        (v, u)
        for v in range(n)
        for u in marked[v]
        if v < u and v in marked[u]
    ]
    return from_edges(n, edges)
