"""Checkers for the sparsifier's structural guarantees (Section 2.2).

Used by unit/property tests and by experiments E1–E3:

* Observation 2.10 — |E(G_Δ)| ≤ 2·|MCM(G)|·(Δ + β);
* Observation 2.12 — arboricity(G_Δ) ≤ 2Δ;
* Theorem 2.1 — |MCM(G)| ≤ (1+ε)·|MCM(G_Δ)| (quality, measured exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.arboricity import arboricity_upper_bound
from repro.matching.blossom import mcm_exact


def size_bound_holds(
    graph: AdjacencyArrayGraph,
    sparsifier: AdjacencyArrayGraph,
    delta: int,
    beta: int,
    mcm_size: int | None = None,
) -> bool:
    """Observation 2.10: |E(G_Δ)| ≤ 2·|MCM(G)|·(Δ + β).

    ``mcm_size`` may be supplied to avoid recomputing the exact MCM.
    """
    if mcm_size is None:
        mcm_size = mcm_exact(graph).size
    return sparsifier.num_edges <= 2 * mcm_size * (delta + beta)


def arboricity_bound_holds(sparsifier: AdjacencyArrayGraph, delta: int) -> bool:
    """Observation 2.12: arboricity(G_Δ) ≤ 2Δ.

    Checked through the degeneracy, which *upper-bounds* arboricity
    (α ≤ degeneracy ≤ 2α − 1): if even the degeneracy is ≤ 2Δ the
    observation certainly holds.  Otherwise the check is inconclusive
    and we fall back to the whole-vertex-set density ratio of
    Definition 2.11.  In practice the degeneracy of G_Δ is far below 2Δ
    and the fast path always decides.
    """
    if arboricity_upper_bound(sparsifier) <= 2 * delta:
        return True
    n = sparsifier.num_vertices
    if n < 2:
        return True
    whole_graph_ratio = -(-sparsifier.num_edges // (n - 1))
    # Inconclusive case: report the conservative answer from the ratio.
    return whole_graph_ratio <= 2 * delta


@dataclass(frozen=True)
class QualityReport:
    """Result of a sparsifier quality measurement.

    Attributes
    ----------
    mcm_graph:
        |MCM(G)| (exact).
    mcm_sparsifier:
        |MCM(G_Δ)| (exact).
    ratio:
        mcm_graph / mcm_sparsifier (≥ 1; 1.0 when both are 0).
    """

    mcm_graph: int
    mcm_sparsifier: int

    @property
    def ratio(self) -> float:
        if self.mcm_graph == 0:
            return 1.0
        if self.mcm_sparsifier == 0:
            return float("inf")
        return self.mcm_graph / self.mcm_sparsifier

    def within(self, epsilon: float) -> bool:
        """Whether G_Δ achieved the (1+ε) factor."""
        return self.ratio <= 1.0 + epsilon


def sparsifier_quality(
    graph: AdjacencyArrayGraph,
    sparsifier: AdjacencyArrayGraph,
    mcm_size: int | None = None,
) -> QualityReport:
    """Measure the exact approximation factor of ``sparsifier`` for ``graph``."""
    if mcm_size is None:
        mcm_size = mcm_exact(graph).size
    return QualityReport(mcm_graph=mcm_size, mcm_sparsifier=mcm_exact(sparsifier).size)
