"""The Δ(β, ε) policy of Theorem 2.1.

The proof of Claim 2.7 sets Δ = 20·(β/ε)·ln(24/ε); any Δ at least that
large yields a (1+ε)-sparsifier with high probability.  The constant 20 is
an artifact of the union-bound bookkeeping — experiment E11 shows far
smaller constants already achieve (1+ε) on every family we generate, so
the library exposes both the *paper* constant (for fidelity) and a
*practical* constant (for speed), via :class:`DeltaPolicy`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: The constant proven sufficient in Claim 2.7 (Δ = 20·(β/ε)·ln(24/ε)).
PAPER_CONSTANT: float = 20.0

#: Calibrated empirically in experiment E11: achieves (1+ε) on all tested
#: families while keeping the sparsifier an order of magnitude smaller.
PRACTICAL_CONSTANT: float = 2.0


def _delta(beta: int, epsilon: float, constant: float) -> int:
    if beta < 1:
        raise ValueError(f"beta must be >= 1, got {beta}")
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie in (0, 1), got {epsilon}")
    return max(1, math.ceil(constant * (beta / epsilon) * math.log(24.0 / epsilon)))


def delta_paper(beta: int, epsilon: float) -> int:
    """Δ with the constant the paper proves sufficient (20)."""
    return _delta(beta, epsilon, PAPER_CONSTANT)


def delta_practical(beta: int, epsilon: float, constant: float = PRACTICAL_CONSTANT) -> int:
    """Δ with a calibrated practical constant (default 2)."""
    return _delta(beta, epsilon, constant)


def beta_regime_ok(num_vertices: int, beta: int, epsilon: float,
                   constant: float = 1.0) -> bool:
    """Whether β = O(ε·n / log n) holds — Theorem 2.1's validity regime.

    For larger β the high-probability union bound of Lemma 2.6 breaks
    down; the helper lets experiments annotate which parameter points sit
    inside the proven regime.
    """
    if num_vertices < 2:
        return beta <= 1
    return beta <= constant * epsilon * num_vertices / math.log(num_vertices)


@dataclass(frozen=True)
class DeltaPolicy:
    """A named Δ(β, ε) rule threaded through the pipelines.

    Attributes
    ----------
    constant:
        Multiplier c in Δ = c·(β/ε)·ln(24/ε).
    cap_to_n:
        If True, Δ is capped at n − 1 (marking more than all neighbors is
        meaningless); pipelines enable this.
    """

    constant: float = PRACTICAL_CONSTANT
    cap_to_n: bool = True

    def delta(self, beta: int, epsilon: float, num_vertices: int | None = None) -> int:
        """Compute Δ for the given parameters."""
        value = _delta(beta, epsilon, self.constant)
        if self.cap_to_n and num_vertices is not None and num_vertices > 1:
            value = min(value, num_vertices - 1)
        return value

    @classmethod
    def paper(cls) -> "DeltaPolicy":
        """The policy with the proven constant 20."""
        return cls(constant=PAPER_CONSTANT)

    @classmethod
    def practical(cls) -> "DeltaPolicy":
        """The calibrated practical policy (constant 2)."""
        return cls(constant=PRACTICAL_CONSTANT)
