"""The paper's bounds as a calculator — predicted numbers for any (n, β, ε).

Experiments compare measured quantities against paper predictions; this
module centralizes the predictions so tables and users quote the same
formulas.  Everything is a direct transcription of a theorem statement:

* Theorem 2.1 / Claim 2.7 — Δ;
* Observation 2.10 — sparsifier size;
* Observation 2.12 — arboricity;
* Lemma 2.2 — MCM lower bound;
* Theorem 3.1 — sequential probe bound;
* Theorem 3.3 — message bound (per round of the black box);
* Theorem 3.5 — dynamic update bound;
* Lemma 2.13 / Observation 2.14 — the two lower bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.delta import delta_paper, delta_practical


@dataclass(frozen=True)
class PaperBounds:
    """All paper-predicted quantities for one parameter point.

    Attributes are direct theorem transcriptions; see module docstring.
    ``delta`` uses the practical constant (``delta_proven`` the paper's
    20), and all downstream bounds are expressed with ``delta``.
    """

    n: int
    beta: int
    epsilon: float
    mcm_size: int | None = None

    @property
    def delta(self) -> int:
        """Δ with the practical constant."""
        return delta_practical(self.beta, self.epsilon)

    @property
    def delta_proven(self) -> int:
        """Δ = 20·(β/ε)·ln(24/ε), the Claim 2.7 constant."""
        return delta_paper(self.beta, self.epsilon)

    @property
    def mcm_lower_bound(self) -> float:
        """Lemma 2.2: |MCM| ≥ n/(β+2) (n = non-isolated vertices)."""
        return self.n / (self.beta + 2)

    @property
    def sparsifier_size_naive(self) -> int:
        """n·Δ (trivial)."""
        return self.n * self.delta

    @property
    def sparsifier_size_sharp(self) -> float:
        """Observation 2.10: 2·|MCM|·(Δ+β); uses Lemma 2.2 when the MCM
        size is unknown (then it is an upper bound on the bound)."""
        mcm = self.mcm_size if self.mcm_size is not None else self.n / 2
        return 2 * mcm * (self.delta + self.beta)

    @property
    def arboricity_bound(self) -> int:
        """Observation 2.12: 2Δ."""
        return 2 * self.delta

    @property
    def sequential_probe_bound(self) -> int:
        """Theorem 3.1: n·(Δ+1) probes with the pos-array sampler."""
        return self.n * (self.delta + 1)

    @property
    def dynamic_update_bound(self) -> float:
        """Theorem 3.5 shape: O(Δ/ε²) work per update (in ops)."""
        return self.delta / (self.epsilon ** 2)

    def messages_bound(self, rounds: int) -> int:
        """Theorem 3.3: ≤ rounds · n·Δ messages for a T-round black box."""
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return rounds * self.n * self.delta

    @property
    def deterministic_ratio_lower_bound(self) -> float:
        """Lemma 2.13: any deterministic G_Δ has ratio ≥ n/(2Δ)."""
        return self.n / (2 * self.delta)

    def exact_preservation_upper_bound(self) -> float:
        """Observation 2.14: P[exact] ≤ 4Δ/n on the bridge instance."""
        return min(1.0, 4 * self.delta / self.n)

    def summary(self) -> dict[str, float]:
        """All bounds as a flat dict (for table annotations)."""
        return {
            "delta": float(self.delta),
            "delta_proven": float(self.delta_proven),
            "mcm_lower_bound": self.mcm_lower_bound,
            "sparsifier_size_naive": float(self.sparsifier_size_naive),
            "sparsifier_size_sharp": float(self.sparsifier_size_sharp),
            "arboricity_bound": float(self.arboricity_bound),
            "sequential_probe_bound": float(self.sequential_probe_bound),
            "dynamic_update_bound": self.dynamic_update_bound,
            "deterministic_ratio_lower_bound":
                self.deterministic_ratio_lower_bound,
            "exact_preservation_upper_bound":
                self.exact_preservation_upper_bound(),
        }
