"""The paper's negative results, made executable (Section 2.2.3).

* Lemma 2.13 — *randomization is necessary*: any deterministic marker can
  be fooled into an approximation no better than n/(2Δ).  We realize the
  adversary's strategy concretely: against the canonical deterministic
  marker "mark your first Δ adjacency entries", the adversary presents
  adjacency arrays that list a fixed Δ-vertex decoy set D first.  Every
  marked edge then touches D, so the sparsifier's MCM is ≤ |D| while the
  graph (a clique, β ≤ 2 even after removing the adaptively chosen
  non-edge) has a perfect matching.

* Observation 2.14 — *exactness is impossible*: on two odd cliques joined
  by a bridge, the bridge must be in every MCM, yet it is marked with
  probability exactly 1 − (1 − 2Δ/n)² ≤ 4Δ/n.  We provide the closed form
  and an empirical estimator (experiment E6 overlays the two).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.graphs.generators.cliques import two_cliques_with_bridge
from repro.instrument.rng import resolve_rng
from repro.matching.blossom import mcm_exact


# --------------------------------------------------------------------- #
# Lemma 2.13: deterministic marking fails                                #
# --------------------------------------------------------------------- #
def adversarial_clique_ordering(n: int, delta: int) -> list[np.ndarray]:
    """Adjacency arrays for K_n with the decoy set D = {0..Δ−1} listed first.

    Returns per-vertex neighbor arrays in the adversary's order.  Any
    marker that inspects/marks only the first Δ entries of each array
    (the canonical deterministic strategy) sees only edges into D.
    """
    if delta >= n / 2:
        raise ValueError("Lemma 2.13 requires delta < n/2")
    arrays: list[np.ndarray] = []
    decoys = np.arange(delta, dtype=np.int64)
    for v in range(n):
        d = decoys[decoys != v]
        rest = np.array([u for u in range(n) if u != v and u >= delta], dtype=np.int64)
        arrays.append(np.concatenate((d, rest)))
    return arrays


def deterministic_first_delta_sparsifier(
    n: int, delta: int
) -> AdjacencyArrayGraph:
    """The sparsifier a first-Δ deterministic marker builds on the
    adversarial clique ordering; all its edges touch D = {0..Δ−1}."""
    arrays = adversarial_clique_ordering(n, delta)
    edges: set[tuple[int, int]] = set()
    for v, arr in enumerate(arrays):
        for u in arr[:delta]:
            u = int(u)
            edges.add((v, u) if v < u else (u, v))
    return from_edges(n, sorted(edges))


@dataclass(frozen=True)
class DeterministicLowerBoundReport:
    """Measured outcome of the Lemma 2.13 game.

    Attributes
    ----------
    mcm_graph:
        |MCM(K_n)| = ⌊n/2⌋.
    mcm_sparsifier:
        MCM size of the deterministically marked sparsifier (≤ Δ).
    paper_bound:
        The lemma's lower bound n/(2Δ) on the approximation ratio.
    """

    mcm_graph: int
    mcm_sparsifier: int
    paper_bound: float

    @property
    def ratio(self) -> float:
        return self.mcm_graph / max(1, self.mcm_sparsifier)


def run_deterministic_lower_bound(n: int, delta: int) -> DeterministicLowerBoundReport:
    """Play the Lemma 2.13 game and measure the resulting ratio."""
    sparsifier = deterministic_first_delta_sparsifier(n, delta)
    return DeterministicLowerBoundReport(
        mcm_graph=n // 2,
        mcm_sparsifier=mcm_exact(sparsifier).size,
        paper_bound=n / (2.0 * delta),
    )


# --------------------------------------------------------------------- #
# Observation 2.14: exact preservation needs Δ = Ω(n)                    #
# --------------------------------------------------------------------- #
def exact_preservation_probability(half: int, delta: int) -> float:
    """Closed form for P[G_Δ preserves the exact MCM] on the bridge instance.

    Equation (5): the bridge (a, b) survives iff a or b marks it;
    P = 1 − (1 − 2Δ/n)² with n = 2·half, i.e. 1 − (1 − Δ/half)².
    """
    if half < 1 or half % 2 == 0:
        raise ValueError(f"half must be a positive odd integer, got {half}")
    q = max(0.0, 1.0 - delta / half)
    return 1.0 - q * q


def empirical_exact_preservation(
    half: int,
    delta: int,
    trials: int,
    rng: np.random.Generator | int | None = None,
    check_full_mcm: bool = False,
    *,
    seed: int | None = None,
) -> float:
    """Empirical frequency with which G_Δ preserves the exact MCM size
    on :func:`two_cliques_with_bridge`.

    By default measures bridge survival, which *upper-bounds* exact
    preservation (Observation 2.14's argument: exact ⇒ the bridge was
    marked) and is exactly the closed form of
    :func:`exact_preservation_probability`.  With ``check_full_mcm=True``
    the estimator instead computes |MCM(G_Δ)| per trial (exact but
    slower); tests verify the two agree up to the within-clique matching
    slack on small instances.
    """
    from repro.core.sparsifier import build_sparsifier

    graph = two_cliques_with_bridge(half)
    gen = resolve_rng(seed=seed, rng=rng,
                      owner="empirical_exact_preservation")
    hits = 0
    for _ in range(trials):
        result = build_sparsifier(graph, delta, rng=gen.spawn(1)[0])
        if check_full_mcm:
            if mcm_exact(result.subgraph).size == half:
                hits += 1
        elif result.subgraph.has_edge(0, half):
            hits += 1
    return hits / trials
