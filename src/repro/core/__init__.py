"""The paper's primary contribution: the random matching sparsifier G_Δ.

* :mod:`repro.core.delta` — the Δ(β, ε) policy (Theorem 2.1's constant and
  a calibrated practical one).
* :mod:`repro.core.sparsifier` — G_Δ itself, with both samplers from §3.1.
* :mod:`repro.core.bounded_degree` — Solomon's ITCS'18 bounded-degree
  sparsifier for bounded-arboricity graphs.
* :mod:`repro.core.compose` — the two-round composition G̃_Δ of §3.2.
* :mod:`repro.core.properties` — checkers for Obs 2.10/2.12 and quality.
* :mod:`repro.core.lower_bounds` — Lemma 2.13 / Obs 2.14 constructions.
"""

from repro.core.bounds import PaperBounds
from repro.core.delta import (
    DeltaPolicy,
    PAPER_CONSTANT,
    PRACTICAL_CONSTANT,
    beta_regime_ok,
    delta_paper,
    delta_practical,
)
from repro.core.sparsifier import RandomSparsifier, SparsifierResult, build_sparsifier
from repro.core.bounded_degree import solomon_sparsifier
from repro.core.compose import composed_sparsifier
from repro.core.properties import (
    arboricity_bound_holds,
    size_bound_holds,
    sparsifier_quality,
)

__all__ = [
    "DeltaPolicy",
    "PAPER_CONSTANT",
    "PRACTICAL_CONSTANT",
    "PaperBounds",
    "RandomSparsifier",
    "SparsifierResult",
    "arboricity_bound_holds",
    "beta_regime_ok",
    "build_sparsifier",
    "composed_sparsifier",
    "delta_paper",
    "delta_practical",
    "size_bound_holds",
    "solomon_sparsifier",
    "sparsifier_quality",
]
