"""The composed bounded-degree sparsifier G̃_Δ of Section 3.2.

Round 1: build the random sparsifier G_Δ — a (1+ε)-sparsifier with
arboricity ≤ 2Δ (Theorem 2.1 + Observation 2.12).
Round 2: run Solomon's bounded-degree sparsifier on G_Δ with α = 2Δ —
another (1+ε) factor, and maximum degree O(Δ/ε) = O((β/ε²)·log(1/ε)).

Total quality: (1+ε)² ≤ 1+3ε for ε < 1; the paper folds this back to 1+ε
by a scaling argument, which :func:`composed_sparsifier` applies when
``rescale=True`` (it runs both stages at ε/3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bounded_degree import solomon_degree_bound, solomon_sparsifier
from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import build_sparsifier
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng


@dataclass(frozen=True)
class ComposedSparsifier:
    """Output of the two-round composition.

    Attributes
    ----------
    subgraph:
        G̃_Δ, the final bounded-degree sparsifier.
    intermediate:
        G_Δ from round 1.
    delta:
        Δ used in round 1.
    degree_bound:
        Δ_α, the guaranteed maximum degree of ``subgraph``.
    """

    subgraph: AdjacencyArrayGraph
    intermediate: AdjacencyArrayGraph
    delta: int
    degree_bound: int


def composed_sparsifier(
    graph: AdjacencyArrayGraph,
    beta: int,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
    policy: DeltaPolicy | None = None,
    rescale: bool = True,
    *,
    seed: int | None = None,
) -> ComposedSparsifier:
    """Build G̃_Δ = Solomon(G_Δ), the two-round bounded-degree sparsifier.

    Parameters
    ----------
    graph:
        Input graph with neighborhood independence ≤ ``beta``.
    beta, epsilon:
        Structure and quality parameters.
    rng:
        Seed or generator for round 1's randomness.
    policy:
        Δ policy (default: the practical policy).
    rescale:
        Run both stages at ε/3 so the composition is a genuine
        (1+ε)-sparsifier (the paper's scaling argument).

    Returns
    -------
    ComposedSparsifier
    """
    stage_eps = epsilon / 3.0 if rescale else epsilon
    pol = policy or DeltaPolicy.practical()
    delta = pol.delta(beta, stage_eps, graph.num_vertices)
    gen = resolve_rng(seed=seed, rng=rng, owner="composed_sparsifier")
    g_delta = build_sparsifier(graph, delta, rng=gen).subgraph
    arboricity = 2 * delta  # Observation 2.12
    tilde = solomon_sparsifier(g_delta, arboricity, stage_eps)
    return ComposedSparsifier(
        subgraph=tilde,
        intermediate=g_delta,
        delta=delta,
        degree_bound=solomon_degree_bound(arboricity, stage_eps),
    )
