"""The random matching sparsifier G_Δ (Section 2).

Every vertex marks Δ incident edges uniformly at random without
replacement (all of them if deg(v) ≤ Δ); G_Δ is the union of all marked
edges.  Theorem 2.1: for Δ = Θ((β/ε)·log(1/ε)), G_Δ is a (1+ε)-matching
sparsifier with high probability.

Two samplers implement the per-vertex marking, both per Section 3.1:

``pos_array`` (default)
    The deterministic-time sampler: emulates a Fisher–Yates shuffle over
    the *read-only* adjacency array using an O(1)-initialized
    :class:`~repro.graphs.sparse_array.SparseArray` of positions.
    Exactly min(Δ, deg(v)) neighbor probes per vertex — worst case, not
    just expected — which is what makes Theorem 3.1's runtime bound
    deterministic.

``rejection``
    The simple sampler: draw random neighbor indices, retry on
    duplicates.  Following the paper's tweak, vertices of degree ≤ 2Δ
    mark *all* their neighbors so the rejection loop never runs long;
    expected O(Δ) probes per vertex.

Both samplers touch the input graph only through the probe-counted
``degree`` / ``neighbor`` accessors, so experiments can certify the probe
complexity (E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.graphs.sparse_array import SparseArray
from repro.instrument.counters import Counter
from repro.instrument.rng import resolve_rng

SamplerName = Literal["pos_array", "rejection", "vectorized"]


@dataclass(frozen=True)
class SparsifierResult:
    """Output of a sparsifier construction.

    Attributes
    ----------
    subgraph:
        G_Δ as an :class:`AdjacencyArrayGraph` on the same vertex set.
    marked_by:
        ``marked_by[v]`` is the tuple of neighbors v marked; the union of
        {v} × marked_by[v] over v (as undirected edges) is E(G_Δ).
    delta:
        The Δ used.
    probes:
        Number of adjacency-array probes charged during construction
        (None when no counter was attached).
    """

    subgraph: AdjacencyArrayGraph
    marked_by: tuple[tuple[int, ...], ...]
    delta: int
    probes: int | None = None


def _mark_pos_array(
    graph: AdjacencyArrayGraph, v: int, delta: int, rng: np.random.Generator
) -> tuple[int, ...]:
    """Mark min(Δ, deg(v)) random neighbors with the pos_v emulation.

    Implements the paper's read-only Fisher–Yates: ``pos`` lazily
    represents a permutation of ``[0, deg)``; cell i reads as i until
    written.  Each of the k sampling steps does O(1) work and exactly one
    ``neighbor`` probe, so the per-vertex cost is deterministic O(Δ).
    """
    deg = graph.degree(v)
    k = min(delta, deg)
    if k == 0:
        return ()
    pos = SparseArray(deg)
    marked: list[int] = []
    for step in range(k):
        limit = deg - step  # sample from the not-yet-fixed prefix [0, limit)
        i = int(rng.integers(limit))
        # Read logical entries (0 in the sparse array means "identity").
        pi = pos[i] if pos.is_written(i) else i
        plast = pos[limit - 1] if pos.is_written(limit - 1) else limit - 1
        # Swap: position i now holds the old last entry; the sampled
        # entry pi is fixed at the tail.
        pos[i] = plast
        pos[limit - 1] = pi
        marked.append(graph.neighbor(v, pi))
    return tuple(marked)


def _mark_rejection(
    graph: AdjacencyArrayGraph, v: int, delta: int, rng: np.random.Generator
) -> tuple[int, ...]:
    """Mark neighbors by rejection sampling (paper's simple sampler).

    Per the §3.1 tweak, vertices with deg ≤ 2Δ mark everything, so each
    accepted draw succeeds with probability ≥ 1/2 and the expected probe
    count is O(Δ).
    """
    deg = graph.degree(v)
    if deg <= 2 * delta:
        return tuple(graph.neighbor(v, i) for i in range(deg))
    chosen: set[int] = set()
    marked: list[int] = []
    while len(marked) < delta:
        i = int(rng.integers(deg))
        if i in chosen:
            continue
        chosen.add(i)
        marked.append(graph.neighbor(v, i))
    return tuple(marked)


_SAMPLERS = {"pos_array": _mark_pos_array, "rejection": _mark_rejection}


def _build_vectorized(
    graph: AdjacencyArrayGraph,
    delta: int,
    rng: np.random.Generator,
    materialize_marks: bool = True,
) -> tuple[AdjacencyArrayGraph, tuple[tuple[int, ...], ...]]:
    """Whole-graph vectorized construction of G_Δ (no Python per-vertex loop).

    Draws one uniform key per directed edge and keeps, for every vertex,
    the Δ smallest-keyed incident edges.  Sorting by (source, key) makes
    the within-segment ranks a single vectorized subtraction, and "rank
    < Δ" is exactly a uniform Δ-subset without replacement per vertex —
    the same marking law as the scalar samplers (equivalence is
    property-tested).  This is the **bulk** sampler for large-scale
    benchmarks: it reads the whole CSR, so it is deliberately not
    probe-counted and does not certify sublinearity — it certifies
    wall-clock speed (experiment E16).
    """
    n = graph.num_vertices
    indptr = graph.indptr
    indices = graph.indices
    num_directed = indices.size
    if num_directed == 0:
        empty = from_edges(n, [])
        return empty, tuple(() for _ in range(n))
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keys = rng.random(num_directed)
    # Composite-key argsort (src + key, key ∈ [0,1)) groups by source and
    # shuffles within each segment — ~9x faster than np.lexsort.  float64
    # keeps ≥ 25 random mantissa bits for any realistic n; ties would
    # only make the within-segment order platform-dependent, never
    # non-uniform.
    order = np.argsort(src.astype(np.float64) + keys)
    ranks = np.arange(num_directed, dtype=np.int64) - indptr[src[order]]
    keep = order[ranks < delta]
    marked_src = src[keep]
    marked_dst = indices[keep]
    lo = np.minimum(marked_src, marked_dst)
    hi = np.maximum(marked_src, marked_dst)
    edges = np.unique(np.column_stack((lo, hi)), axis=0)
    subgraph = from_edges(n, edges)
    if not materialize_marks:
        return subgraph, tuple(() for _ in range(n))
    # Per-vertex mark lists (order within a vertex is arbitrary).
    marks_order = np.argsort(marked_src, kind="stable")
    ms, md = marked_src[marks_order], marked_dst[marks_order]
    boundaries = np.searchsorted(ms, np.arange(n + 1))
    marked_by = tuple(
        tuple(int(x) for x in md[boundaries[v]:boundaries[v + 1]])
        for v in range(n)
    )
    return subgraph, marked_by


def build_sparsifier(
    graph: AdjacencyArrayGraph,
    delta: int,
    rng: np.random.Generator | int | None = None,
    sampler: SamplerName = "pos_array",
    probe_counter: Counter | None = None,
    materialize_marks: bool = True,
    *,
    seed: int | None = None,
) -> SparsifierResult:
    """Construct the random sparsifier G_Δ.

    Parameters
    ----------
    graph:
        Input graph; accessed only via O(1) probes.
    delta:
        Number of incident edges each vertex marks (use
        :mod:`repro.core.delta` to derive it from β and ε).
    rng, seed:
        Uniform randomness keywords — an existing generator via ``rng=``
        or an integer via ``seed=`` (not both; integers passed via
        ``rng=`` still work with a :class:`DeprecationWarning`).
        Per-vertex choices are drawn independently, matching
        Observation 2.9's independence requirement.
    sampler:
        ``"pos_array"`` (deterministic probe count, default),
        ``"rejection"``, or ``"vectorized"`` (bulk numpy construction
        for large-scale runs — same marking law, not probe-countable).
    probe_counter:
        If given, the construction is charged to this counter and the
        total is reported in the result.
    materialize_marks:
        Vectorized sampler only: skip building the per-vertex
        ``marked_by`` tuples (saves a Python loop on huge graphs).

    Returns
    -------
    SparsifierResult
    """
    if delta < 1:
        raise ValueError(f"delta must be >= 1, got {delta}")
    gen = resolve_rng(seed=seed, rng=rng, owner="build_sparsifier")
    if sampler == "vectorized":
        if probe_counter is not None:
            raise ValueError(
                "the vectorized sampler is a bulk construction and cannot "
                "be probe-counted; use 'pos_array' for probe accounting"
            )
        subgraph, marked_by = _build_vectorized(
            graph, delta, gen, materialize_marks=materialize_marks
        )
        return SparsifierResult(
            subgraph=subgraph, marked_by=marked_by, delta=delta, probes=None
        )
    try:
        mark = _SAMPLERS[sampler]
    except KeyError:
        raise ValueError(f"unknown sampler {sampler!r}") from None
    counted = graph.with_probe_counter(probe_counter)
    start = probe_counter.value if probe_counter is not None else 0

    marked_by: list[tuple[int, ...]] = []
    edges: set[tuple[int, int]] = set()
    for v in range(graph.num_vertices):
        marks = mark(counted, v, delta, gen)
        marked_by.append(marks)
        for u in marks:
            edges.add((v, u) if v < u else (u, v))
    subgraph = from_edges(graph.num_vertices, sorted(edges))
    probes = probe_counter.value - start if probe_counter is not None else None
    return SparsifierResult(
        subgraph=subgraph, marked_by=tuple(marked_by), delta=delta, probes=probes
    )


class RandomSparsifier:
    """Object-style front end binding a Δ policy to repeated constructions.

    Convenient for pipelines that re-sparsify (the dynamic algorithm
    rebuilds G_Δ every time window).

    Examples
    --------
    >>> from repro.graphs.generators import clique
    >>> s = RandomSparsifier(beta=1, epsilon=0.5, seed=0)
    >>> result = s.sparsify(clique(50))
    >>> result.subgraph.num_edges <= 50 * result.delta
    True
    """

    def __init__(
        self,
        beta: int,
        epsilon: float,
        seed: int | None = None,
        constant: float | None = None,
        sampler: SamplerName = "pos_array",
        *,
        rng: np.random.Generator | None = None,
    ) -> None:
        from repro.core.delta import DeltaPolicy, PRACTICAL_CONSTANT

        self.beta = beta
        self.epsilon = epsilon
        self.policy = DeltaPolicy(
            constant=PRACTICAL_CONSTANT if constant is None else constant
        )
        self.sampler: SamplerName = sampler
        self._rng = resolve_rng(seed=seed, rng=rng, owner="RandomSparsifier")

    def delta_for(self, graph: AdjacencyArrayGraph) -> int:
        """Δ for this policy on ``graph``."""
        return self.policy.delta(self.beta, self.epsilon, graph.num_vertices)

    def sparsify(
        self,
        graph: AdjacencyArrayGraph,
        probe_counter: Counter | None = None,
    ) -> SparsifierResult:
        """Build G_Δ for ``graph`` with a fresh child RNG."""
        return build_sparsifier(
            graph,
            self.delta_for(graph),
            rng=self._rng.spawn(1)[0],
            sampler=self.sampler,
            probe_counter=probe_counter,
        )
