"""Constructing :class:`AdjacencyArrayGraph` instances and NetworkX interop.

The builder is the single validated entry point: it rejects self-loops,
deduplicates parallel edges, symmetrizes, and sorts neighbor lists so that
:meth:`AdjacencyArrayGraph.has_edge` can binary-search.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph

EdgeList = Sequence[tuple[int, int]] | np.ndarray


def validate_edge_list(edges: EdgeList, num_vertices: int) -> np.ndarray:
    """Normalize ``edges`` to a deduplicated ``(m, 2)`` array with u < v.

    Raises
    ------
    ValueError
        On self-loops or endpoints outside ``[0, num_vertices)``.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                     dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"edges must be (m, 2)-shaped, got {arr.shape}")
    if np.any(arr < 0) or np.any(arr >= num_vertices):
        raise ValueError("edge endpoint out of range")
    if np.any(arr[:, 0] == arr[:, 1]):
        raise ValueError("self-loops are not allowed")
    lo = np.minimum(arr[:, 0], arr[:, 1])
    hi = np.maximum(arr[:, 0], arr[:, 1])
    if num_vertices and num_vertices < 3_000_000_000:
        # Composite-key dedup: ~10x faster than np.unique(axis=0).
        key = np.unique(lo * np.int64(num_vertices) + hi)
        return np.column_stack((key // num_vertices, key % num_vertices))
    return np.unique(np.column_stack((lo, hi)), axis=0)


def from_edges(num_vertices: int, edges: EdgeList) -> AdjacencyArrayGraph:
    """Build a graph on ``num_vertices`` vertices from an edge list.

    Parallel edges are silently deduplicated; self-loops raise.

    Examples
    --------
    >>> g = from_edges(3, [(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    """
    if num_vertices < 0:
        raise ValueError(f"num_vertices must be non-negative, got {num_vertices}")
    normalized = validate_edge_list(edges, num_vertices)
    if normalized.shape[0] == 0:
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        return AdjacencyArrayGraph(indptr, np.empty(0, dtype=np.int64))
    # Symmetrize, then bucket by source with a counting sort (vectorized).
    src = np.concatenate((normalized[:, 0], normalized[:, 1]))
    dst = np.concatenate((normalized[:, 1], normalized[:, 0]))
    if num_vertices < 3_000_000_000:
        order = np.argsort(src * np.int64(num_vertices) + dst)
    else:  # pragma: no cover - beyond composite-key range
        order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=num_vertices)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return AdjacencyArrayGraph(indptr, dst)


def from_networkx(graph: nx.Graph) -> tuple[AdjacencyArrayGraph, dict]:
    """Convert a NetworkX graph; returns (graph, node→index mapping)."""
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in graph.edges() if u != v]
    return from_edges(len(nodes), edges), index


def to_networkx(graph: AdjacencyArrayGraph) -> nx.Graph:
    """Convert to a NetworkX graph on nodes ``0..n-1`` (isolated included)."""
    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_vertices))
    nxg.add_edges_from(graph.edges())
    return nxg


def subgraph_from_edges(
    parent: AdjacencyArrayGraph, edges: Iterable[tuple[int, int]]
) -> AdjacencyArrayGraph:
    """Build the subgraph of ``parent`` consisting of ``edges``.

    The vertex set is preserved (same ``n``); this is how sparsifiers are
    materialized.  Each edge must exist in ``parent``.
    """
    edge_list = list(edges)
    for u, v in edge_list:
        if not parent.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) not present in parent graph")
    return from_edges(parent.num_vertices, edge_list)
