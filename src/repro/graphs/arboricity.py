"""Arboricity and degeneracy (Definition 2.11 and Observation 2.12).

The paper uses arboricity α(G) = max_{U ⊆ V, |U| ≥ 2} ⌈|E(U)|/(|U|−1)⌉ as
its uniform-sparsity measure; Observation 2.12 bounds α(G_Δ) ≤ 2Δ.  Exact
arboricity is polynomial (Nash-Williams / matroid union) but heavy; for the
E3 experiment we need a certified *sandwich*:

* :func:`arboricity_lower_bound` — the definition's ratio evaluated on the
  whole vertex set and on every neighborhood-closure candidate we try;
  always a valid lower bound.
* :func:`arboricity_upper_bound` — the degeneracy d(G); every graph has
  α(G) ≤ d(G) (orient edges toward later vertices in a degeneracy order
  and split the ≤ d out-edges per vertex into d forests).
* :func:`arboricity_exact_small` — exhaustive over vertex subsets for tiny
  graphs, used to validate the bounds in unit tests.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph


def degeneracy(graph: AdjacencyArrayGraph) -> tuple[int, np.ndarray]:
    """Degeneracy and a degeneracy ordering (Matula–Beck peeling).

    Returns
    -------
    (d, order):
        ``d`` is the degeneracy; ``order`` lists vertices in peel order
        (each vertex has ≤ d neighbors later in the order).
    """
    n = graph.num_vertices
    if n == 0:
        return 0, np.empty(0, dtype=np.int64)
    deg = np.diff(graph.indptr).astype(np.int64)
    max_deg = int(deg.max(initial=0))
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[deg[v]].append(v)
    removed = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    d = 0
    cursor = 0
    for step in range(n):
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        # Find the current minimum-degree vertex, skipping stale entries.
        while True:
            while not buckets[cursor]:
                cursor += 1
            v = buckets[cursor].pop()
            if not removed[v] and deg[v] == cursor:
                break
        removed[v] = True
        order[step] = v
        d = max(d, cursor)
        for u in graph.neighbors_array(v):
            u = int(u)
            if not removed[u]:
                deg[u] -= 1
                buckets[deg[u]].append(u)
                if deg[u] < cursor:
                    cursor = deg[u]
    return d, order


def arboricity_upper_bound(graph: AdjacencyArrayGraph) -> int:
    """α(G) ≤ degeneracy(G); see module docstring."""
    return degeneracy(graph)[0]


def arboricity_lower_bound(graph: AdjacencyArrayGraph) -> int:
    """A certified lower bound on α(G).

    Evaluates the density ratio ⌈|E(U)|/(|U|−1)⌉ on the full graph, on
    every vertex's closed neighborhood, and on each connected component —
    each is a feasible U in Definition 2.11.
    """
    n = graph.num_vertices
    if n < 2:
        return 0
    best = -(-graph.num_edges // (n - 1)) if graph.num_edges else 0

    # Closed neighborhoods (captures local dense pockets such as cliques).
    for v in range(n):
        nbrs = graph.neighbors_array(v)
        if nbrs.size < 1:
            continue
        members = set(int(u) for u in nbrs)
        members.add(v)
        if len(members) < 2:
            continue
        edge_count = 0
        for u in members:
            for w in graph.neighbors_array(u):
                if int(w) in members and u < int(w):
                    edge_count += 1
        best = max(best, -(-edge_count // (len(members) - 1)))
    return best


def arboricity_exact_small(graph: AdjacencyArrayGraph, max_vertices: int = 14) -> int:
    """Exact arboricity by exhausting all vertex subsets (tiny graphs only).

    Raises
    ------
    ValueError
        If the graph has more than ``max_vertices`` vertices.
    """
    n = graph.num_vertices
    if n > max_vertices:
        raise ValueError(f"graph too large for exhaustive arboricity (n={n})")
    if n < 2:
        return 0
    adj_sets = [set(int(u) for u in graph.neighbors_array(v)) for v in range(n)]
    best = 0
    vertices = list(range(n))
    for size in range(2, n + 1):
        for subset in combinations(vertices, size):
            sset = set(subset)
            edge_count = sum(
                1 for u in subset for w in adj_sets[u] if w in sset and u < w
            )
            best = max(best, -(-edge_count // (size - 1)))
    return best
