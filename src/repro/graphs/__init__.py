"""Graph substrate: adjacency-array graphs, structural parameters, generators.

The paper's sublinear-time results are stated in the *adjacency array*
model (Section 3.1): the algorithm has O(1) access to ``deg(v)`` and to the
``i``-th neighbor of ``v``, and read-only access otherwise.
:class:`~repro.graphs.adjacency.AdjacencyArrayGraph` implements exactly
that model, with an optional probe counter so experiments can certify
sublinearity.
"""

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import (
    from_edges,
    from_networkx,
    to_networkx,
    validate_edge_list,
)
from repro.graphs.neighborhood import (
    neighborhood_independence_exact,
    neighborhood_independence_greedy,
    neighborhood_independence_sampled,
    neighborhood_independence_upper,
)
from repro.graphs.arboricity import (
    arboricity_exact_small,
    arboricity_lower_bound,
    arboricity_upper_bound,
    degeneracy,
)
from repro.graphs.sparse_array import SparseArray

__all__ = [
    "AdjacencyArrayGraph",
    "SparseArray",
    "arboricity_exact_small",
    "arboricity_lower_bound",
    "arboricity_upper_bound",
    "degeneracy",
    "from_edges",
    "from_networkx",
    "neighborhood_independence_exact",
    "neighborhood_independence_greedy",
    "neighborhood_independence_sampled",
    "neighborhood_independence_upper",
    "to_networkx",
    "validate_edge_list",
]
