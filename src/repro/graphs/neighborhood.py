"""Neighborhood independence number β(G).

β(G) is the size of the largest independent set contained in the
neighborhood N(v) of any single vertex v (Section 1).  Computing an
independence number is NP-hard in general, but neighborhoods in the
bounded-β families we study are small or highly structured, so an exact
bitset branch-and-bound is practical; we also provide a greedy lower bound
and a clique-cover upper bound for large instances.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph


def _independence_number_bitset(adj: list[int], vertices: int) -> int:
    """Exact independence number of the graph given by bitset adjacency.

    ``adj[i]`` is the bitmask of neighbors of vertex ``i`` among the
    ``vertices``-bit universe.  Classic branch and bound: pick the highest
    degree remaining vertex, branch on excluding / including it, prune with
    the trivial popcount bound.
    """
    best = 0

    def popcount(x: int) -> int:
        return x.bit_count()

    def search(candidates: int, size: int) -> None:
        nonlocal best
        if size + popcount(candidates) <= best:
            return
        if candidates == 0:
            best = max(best, size)
            return
        # Pick the candidate with the most candidate-neighbors.
        pick, pick_deg = -1, -1
        rest = candidates
        while rest:
            v = (rest & -rest).bit_length() - 1
            rest &= rest - 1
            d = popcount(adj[v] & candidates)
            if d > pick_deg:
                pick, pick_deg = v, d
        if pick_deg == 0:
            # Remaining candidates form an independent set.
            best = max(best, size + popcount(candidates))
            return
        bit = 1 << pick
        # Branch 1: include pick (drop its neighbors).
        search(candidates & ~(bit | adj[pick]), size + 1)
        # Branch 2: exclude pick.
        search(candidates & ~bit, size)

    search((1 << vertices) - 1, 0)
    return best


def _neighborhood_subgraph_bitsets(
    graph: AdjacencyArrayGraph, v: int
) -> tuple[list[int], int]:
    """Bitset adjacency of the subgraph induced by N(v)."""
    nbrs = graph.neighbors_array(v)
    k = nbrs.size
    index = {int(u): i for i, u in enumerate(nbrs)}
    adj = [0] * k
    for i, u in enumerate(nbrs):
        for w in graph.neighbors_array(int(u)):
            j = index.get(int(w))
            if j is not None:
                adj[i] |= 1 << j
    return adj, k


def neighborhood_independence_exact(
    graph: AdjacencyArrayGraph, max_neighborhood: int = 64
) -> int:
    """Exact β(G) via per-neighborhood branch-and-bound.

    Parameters
    ----------
    graph:
        Input graph.
    max_neighborhood:
        Guard: raise if any vertex degree exceeds this, since the
        branch-and-bound could then be too slow.  Raise the limit
        explicitly for structured instances you know are easy.

    Returns
    -------
    int
        β(G); 0 for an edgeless graph.
    """
    beta = 0
    for v in range(graph.num_vertices):
        deg = int(graph.indptr[v + 1] - graph.indptr[v])
        if deg == 0:
            continue
        if deg > max_neighborhood:
            raise ValueError(
                f"vertex {v} has degree {deg} > max_neighborhood="
                f"{max_neighborhood}; use neighborhood_independence_greedy "
                "or raise the limit"
            )
        if deg <= beta:
            continue  # cannot beat the current maximum
        adj, k = _neighborhood_subgraph_bitsets(graph, v)
        beta = max(beta, _independence_number_bitset(adj, k))
    return beta


def neighborhood_independence_greedy(
    graph: AdjacencyArrayGraph,
    rng: np.random.Generator | None = None,
    *,
    seed: int | None = None,
) -> int:
    """Greedy lower bound on β(G).

    For every vertex, greedily grows an independent set inside its
    neighborhood in a (optionally shuffled) degree-ascending order.  Always
    ≤ β(G); equals it on the structured families used in experiments
    (cliques, line graphs of simple graphs) in practice.
    """
    if seed is not None:
        from repro.instrument.rng import resolve_rng

        rng = resolve_rng(seed=seed, rng=rng,
                          owner="neighborhood_independence_greedy")
    degrees = np.diff(graph.indptr)
    best = 0
    for v in range(graph.num_vertices):
        nbrs = graph.neighbors_array(v)
        if nbrs.size <= best:
            continue
        order = nbrs[np.argsort(degrees[nbrs], kind="stable")]
        if rng is not None:
            order = rng.permutation(nbrs)
        chosen: list[int] = []
        chosen_set: set[int] = set()
        for u in order:
            u = int(u)
            if all(not graph.has_edge(u, w) for w in chosen):
                chosen.append(u)
                chosen_set.add(u)
        best = max(best, len(chosen))
    return best


def neighborhood_independence_upper(graph: AdjacencyArrayGraph) -> int:
    """Clique-cover upper bound on β(G).

    Inside each neighborhood, greedily covers the vertices by cliques; the
    number of cliques used upper-bounds the independence number of that
    neighborhood (each clique contributes at most one independent vertex),
    hence the maximum over vertices upper-bounds β(G).
    """
    best = 0
    for v in range(graph.num_vertices):
        nbrs = [int(u) for u in graph.neighbors_array(v)]
        if len(nbrs) <= best:
            continue
        remaining = set(nbrs)
        cliques = 0
        while remaining:
            seed = remaining.pop()
            clique = [seed]
            for u in list(remaining):
                if all(graph.has_edge(u, w) for w in clique):
                    clique.append(u)
                    remaining.remove(u)
            cliques += 1
        best = max(best, cliques)
    return best


def neighborhood_independence_sampled(
    graph: AdjacencyArrayGraph,
    rng: np.random.Generator | int | None = None,
    vertex_samples: int = 32,
    max_neighborhood: int = 256,
    *,
    seed: int | None = None,
) -> int:
    """Sublinear-style lower-bound estimate of β(G) by vertex sampling.

    Runs the exact per-neighborhood branch-and-bound on a random sample
    of (high-degree-biased) vertices.  Always a valid lower bound on
    β(G); with the bias toward large neighborhoods it finds the true β
    on all our generator families in practice.  Useful when a caller
    needs a β to feed :mod:`repro.core.delta` but does not know the
    family certificate — underestimating β risks quality, so pair it
    with a safety factor.
    """
    from repro.instrument.rng import resolve_rng

    gen = resolve_rng(seed=seed, rng=rng,
                      owner="neighborhood_independence_sampled")
    n = graph.num_vertices
    if n == 0:
        return 0
    degrees = np.diff(graph.indptr).astype(np.float64)
    total = degrees.sum()
    if total == 0:
        return 0
    k = min(vertex_samples, n)
    # Degree-biased sample plus the top-degree vertex for good measure.
    probs = degrees / total
    chosen = set(int(v) for v in gen.choice(n, size=k, replace=True, p=probs))
    chosen.add(int(np.argmax(degrees)))
    beta = 0
    for v in chosen:
        deg = int(degrees[v])
        if deg <= beta:
            continue
        if deg > max_neighborhood:
            raise ValueError(
                f"sampled vertex {v} has degree {deg} > max_neighborhood="
                f"{max_neighborhood}"
            )
        adj, size = _neighborhood_subgraph_bitsets(graph, v)
        beta = max(beta, _independence_number_bitset(adj, size))
    return beta


def is_beta_at_most(graph: AdjacencyArrayGraph, beta: int,
                    max_neighborhood: int = 64) -> bool:
    """Check β(G) ≤ beta exactly (early-exits on the first violation)."""
    for v in range(graph.num_vertices):
        deg = int(graph.indptr[v + 1] - graph.indptr[v])
        if deg <= beta:
            continue
        if deg > max_neighborhood:
            raise ValueError(
                f"vertex {v} has degree {deg} > max_neighborhood={max_neighborhood}"
            )
        adj, k = _neighborhood_subgraph_bitsets(graph, v)
        if _independence_number_bitset(adj, k) > beta:
            return False
    return True
