"""The Aho–Hopcroft–Ullman O(1)-initialization "sparse array".

Section 3.1 of the paper needs, for every vertex ``v``, a position array
``pos_v`` of length ``deg(v)`` that is *initialized to zero in O(1) time* —
allocating and zeroing a real array would cost O(deg(v)), destroying the
sublinear bound.  The classic solution ([AHU74], Exercise 2.12) keeps two
auxiliary stacks that witness which cells have ever been written; unwritten
cells read back as the default value.

This structure is exactly what :class:`~repro.core.sparsifier` uses to
implement the deterministic O(Δ)-per-vertex Fisher–Yates emulation over
read-only adjacency arrays.
"""

from __future__ import annotations

from typing import Iterator


class SparseArray:
    """Fixed-length array with O(1) init, get, and set.

    All cells initially hold ``default``.  Internally ``_index[i]`` points
    into the ``_witness`` stack; cell ``i`` has been written iff
    ``_witness[_index[i]] == i`` and ``_index[i] < len(_values)``.  Python
    lists are allocated lazily (amortized) via append, so construction does
    not touch all ``length`` cells.

    Notes
    -----
    CPython's list allocation is O(length) for the ``_index`` backing store
    if pre-allocated; to keep *true* O(1) construction we back ``_index``
    with a dict, which only stores written positions.  The dict-based
    variant has the same observable semantics as the textbook two-stack
    construction and identical asymptotics (O(1) expected per op), and is
    what we test against a plain-dict reference model.

    Examples
    --------
    >>> a = SparseArray(10, default=0)
    >>> a[3]
    0
    >>> a[3] = 7
    >>> a[3], a[4]
    (7, 0)
    """

    __slots__ = ("_length", "_default", "_written")

    def __init__(self, length: int, default: int = 0) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self._length = length
        self._default = default
        self._written: dict[int, int] = {}

    def __len__(self) -> int:
        return self._length

    def _check(self, index: int) -> int:
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for length {self._length}")
        return index

    def __getitem__(self, index: int) -> int:
        index = self._check(index)
        return self._written.get(index, self._default)

    def __setitem__(self, index: int, value: int) -> None:
        index = self._check(index)
        self._written[index] = value

    def is_written(self, index: int) -> bool:
        """Whether ``index`` has been explicitly assigned since init."""
        return self._check(index) in self._written

    def written_count(self) -> int:
        """Number of cells ever written; the sampler keeps this ≤ 2Δ."""
        return len(self._written)

    def clear(self) -> None:
        """Reset every cell to ``default`` in O(written) time."""
        self._written.clear()

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self._written.get(i, self._default)
