"""Read-only adjacency-array graphs — the paper's sublinear data model.

The graph is stored in CSR form: ``indptr`` of length ``n + 1`` and
``indices`` of length ``2m``; the neighbors of ``v`` occupy
``indices[indptr[v]:indptr[v + 1]]`` in arbitrary order.  The public
accessors mirror the operations the model grants in O(1):

* :meth:`AdjacencyArrayGraph.degree`
* :meth:`AdjacencyArrayGraph.neighbor` (the *i*-th neighbor of *v*)

Both optionally charge a :class:`~repro.instrument.counters.Counter`, so an
experiment can certify that an algorithm made o(m) probes (Theorem 3.1 and
the E7/E9 experiments).  Bulk *whole-graph* accessors (``edges``,
``neighbors_array``) exist for algorithms that are allowed to read
everything (e.g. exact matching on the sparsifier) and are deliberately
**not** probe-counted — they would be cheating if used by a sublinear
algorithm, and tests assert the sequential pipeline never calls them on
the input graph.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.instrument.counters import Counter


class AdjacencyArrayGraph:
    """An immutable undirected graph over vertices ``0..n-1`` in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; monotone, ``indptr[0] == 0``.
    indices:
        ``int64`` array of length ``indptr[-1]``; neighbor lists.  Each
        undirected edge {u, v} appears twice: once in u's list and once in
        v's list.
    probe_counter:
        Optional counter charged one unit per ``degree``/``neighbor`` call.

    Notes
    -----
    Construct via :func:`repro.graphs.builder.from_edges` rather than
    directly; the builder validates symmetry, sorts neighbor lists, and
    rejects self-loops and multi-edges.
    """

    __slots__ = ("indptr", "indices", "probe_counter", "_n", "_m")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        probe_counter: Counter | None = None,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be 1-D arrays")
        if indptr.size == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0 and be non-empty")
        if indptr[-1] != indices.size:
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) ({indices.size})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.indptr = indptr
        self.indices = indices
        self.probe_counter = probe_counter
        self._n = indptr.size - 1
        self._m = indices.size // 2

    # ------------------------------------------------------------------ #
    # O(1) model accessors (probe-counted)                               #
    # ------------------------------------------------------------------ #
    def degree(self, v: int) -> int:
        """Degree of vertex ``v``; one probe."""
        if self.probe_counter is not None:
            self.probe_counter.increment()
        return int(self.indptr[v + 1] - self.indptr[v])

    def neighbor(self, v: int, i: int) -> int:
        """The ``i``-th neighbor of ``v`` (0-based); one probe.

        Raises
        ------
        IndexError
            If ``i`` is outside ``[0, deg(v))``.
        """
        start = self.indptr[v]
        end = self.indptr[v + 1]
        if not 0 <= i < end - start:
            raise IndexError(f"neighbor index {i} out of range for vertex {v}")
        if self.probe_counter is not None:
            self.probe_counter.increment()
        return int(self.indices[start + i])

    # ------------------------------------------------------------------ #
    # Bulk accessors (NOT probe-counted; see module docstring)           #
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return self._m

    def degrees(self) -> np.ndarray:
        """All vertex degrees as an array (bulk; not probe-counted)."""
        return np.diff(self.indptr)

    def neighbors_array(self, v: int) -> np.ndarray:
        """A view of ``v``'s neighbor list (bulk; do not mutate)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate each undirected edge once as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for w in self.indices[self.indptr[u] : self.indptr[u + 1]]:
                if u < w:
                    yield (u, int(w))

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row (bulk)."""
        if self._m == 0:
            return np.empty((0, 2), dtype=np.int64)
        src = np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self.indptr))
        mask = src < self.indices
        return np.column_stack((src[mask], self.indices[mask]))

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search (neighbor lists are sorted)."""
        if u == v:
            return False
        row = self.indices[self.indptr[u] : self.indptr[u + 1]]
        pos = int(np.searchsorted(row, v))
        return pos < row.size and row[pos] == v

    def max_degree(self) -> int:
        """Maximum degree (bulk)."""
        if self._n == 0:
            return 0
        return int(np.diff(self.indptr).max(initial=0))

    def non_isolated_count(self) -> int:
        """Number of vertices with degree ≥ 1 (the paper's ``n'``)."""
        return int(np.count_nonzero(np.diff(self.indptr)))

    def with_probe_counter(self, counter: Counter | None) -> "AdjacencyArrayGraph":
        """A view of the same graph charged to ``counter``."""
        return AdjacencyArrayGraph(self.indptr, self.indices, counter)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdjacencyArrayGraph(n={self._n}, m={self._m})"
