"""Random families: G(n, p), bipartite, and β-controlled unions.

``erdos_renyi`` and ``random_bipartite`` serve as *control* workloads —
they do **not** have bounded β, and experiment E1 uses them to show where
the sparsifier's guarantee genuinely depends on β.
``beta_controlled_graph`` plants a target β by overlaying an independent
"spoiler" set into clique neighborhoods.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.rng import resolve_rng


def erdos_renyi(
    n: int,
    p: float,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """G(n, p).  β is typically Θ(log n / log(1/(1−p))) — *not* bounded."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    gen = resolve_rng(seed=seed, rng=rng, owner="erdos_renyi")
    idx = np.arange(n, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    pairs = np.column_stack((u[mask], v[mask]))
    keep = gen.random(pairs.shape[0]) < p
    return from_edges(n, pairs[keep])


def random_bipartite(
    left: int,
    right: int,
    p: float,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """Random bipartite graph: left vertices 0..left−1, right after.

    Bipartite graphs have β equal to the maximum degree side structure —
    unbounded in general; used to exercise the Hopcroft–Karp matcher.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p out of range: {p}")
    gen = resolve_rng(seed=seed, rng=rng, owner="random_bipartite")
    li = np.arange(left, dtype=np.int64)
    ri = np.arange(right, dtype=np.int64) + left
    u, v = np.meshgrid(li, ri, indexing="ij")
    pairs = np.column_stack((u.ravel(), v.ravel()))
    keep = gen.random(pairs.shape[0]) < p
    return from_edges(left + right, pairs[keep])


def claw_free_complement(
    n: int,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """A dense claw-free graph: the complement of a random bipartite graph.

    If H is triangle-free, its complement is claw-free (β ≤ 2): a claw
    center's independent 3-set in the complement would be a triangle in
    H.  We take H to be a random balanced bipartite graph (triangle-free
    by construction), so the complement has ~n²/4 + noise edges — a
    dense bounded-β family structurally unlike clique unions.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    gen = resolve_rng(seed=seed, rng=rng, owner="claw_free_complement")
    half = n // 2
    idx = np.arange(n, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    pairs = np.column_stack((u[mask], v[mask]))
    # H-edge iff endpoints straddle the bipartition AND a coin lands.
    straddles = (pairs[:, 0] < half) != (pairs[:, 1] < half)
    in_h = straddles & (gen.random(pairs.shape[0]) < 0.5)
    return from_edges(n, pairs[~in_h])


def beta_controlled_graph(
    num_blocks: int,
    block_size: int,
    beta: int,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """Dense graph engineered to have β exactly equal to ``beta``.

    Construction: ``num_blocks`` disjoint cliques of ``block_size``
    vertices (β = 1 so far), plus — for beta ≥ 2 — one *hub* vertex per
    block adjacent to ``beta`` vertices chosen from distinct cliques,
    giving the hub an independent neighborhood of size exactly ``beta``.
    Each clique vertex is targeted by at most one hub, so no other
    neighborhood's independence exceeds ``beta``.  Requires
    num_blocks ≥ beta ≥ 1 and block_size ≥ max(2, beta).
    """
    if beta < 1 or num_blocks < beta or block_size < max(2, beta):
        raise ValueError(
            "need num_blocks >= beta >= 1 and block_size >= max(2, beta)"
        )
    gen = resolve_rng(seed=seed, rng=rng, owner="beta_controlled_graph")
    n_core = num_blocks * block_size
    edges: list[tuple[int, int]] = []
    for c in range(num_blocks):
        base = c * block_size
        for i in range(block_size):
            for j in range(i + 1, block_size):
                edges.append((base + i, base + j))
    if beta == 1:
        return from_edges(n_core, edges)
    # Hubs: one per block, wired into `beta` distinct blocks; unique targets.
    targeted: set[int] = set()
    for h in range(num_blocks):
        hub = n_core + h
        blocks = gen.choice(num_blocks, size=beta, replace=False)
        for b in blocks:
            base = int(b) * block_size
            candidates = [base + i for i in range(block_size)
                          if base + i not in targeted]
            if not candidates:
                continue
            target = candidates[int(gen.integers(len(candidates)))]
            targeted.add(target)
            edges.append((hub, target))
    return from_edges(n_core + num_blocks, edges)
