"""Workload generators: bounded-β graph families and adversarial instances.

Every generator returns an :class:`~repro.graphs.adjacency.AdjacencyArrayGraph`
(plus family-specific metadata where useful) and documents the
neighborhood-independence number β it guarantees.  These are the workloads
behind all experiments E1–E12.
"""

from repro.graphs.generators.cliques import (
    clique,
    clique_minus_edge,
    clique_union,
    overlapping_cliques,
    two_cliques_with_bridge,
)
from repro.graphs.generators.line_graphs import line_graph, random_line_graph
from repro.graphs.generators.geometric import (
    quasi_unit_disk_graph,
    unit_disk_graph,
)
from repro.graphs.generators.growth import (
    bounded_diversity_graph,
    grid_power_graph,
    interval_graph,
)
from repro.graphs.generators.random_families import (
    beta_controlled_graph,
    claw_free_complement,
    erdos_renyi,
    random_bipartite,
)

__all__ = [
    "beta_controlled_graph",
    "bounded_diversity_graph",
    "claw_free_complement",
    "clique",
    "clique_minus_edge",
    "clique_union",
    "erdos_renyi",
    "grid_power_graph",
    "interval_graph",
    "line_graph",
    "overlapping_cliques",
    "quasi_unit_disk_graph",
    "random_bipartite",
    "random_line_graph",
    "two_cliques_with_bridge",
    "unit_disk_graph",
]
