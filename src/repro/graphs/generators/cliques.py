"""Clique-based families: the paper's canonical dense bounded-β instances.

The n-clique has Θ(n²) edges and β = 1 (Section 1.1), making clique unions
the sharpest testbed for sublinearity.  Two instances here are lifted
straight from the paper's lower-bound arguments:

* :func:`clique_minus_edge` — the family 𝒢_n of Lemma 2.13 (deterministic
  sparsifiers fail);
* :func:`two_cliques_with_bridge` — the instance of Observation 2.14
  (exact MCM preservation needs Δ = Ω(n)).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges


def clique(n: int) -> AdjacencyArrayGraph:
    """The complete graph K_n; β(K_n) = 1 for n ≥ 2.

    |MCM| = ⌊n/2⌋.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    idx = np.arange(n, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    return from_edges(n, np.column_stack((u[mask], v[mask])))


def clique_minus_edge(n: int, missing: tuple[int, int] = (0, 1)) -> AdjacencyArrayGraph:
    """K_n with one edge removed — a member of 𝒢_n from Lemma 2.13.

    β = 2 (the two endpoints of the missing edge are independent inside a
    common neighborhood); |MCM| = ⌊n/2⌋ for n ≥ 4.
    """
    if n < 2:
        raise ValueError(f"n must be at least 2, got {n}")
    a, b = missing
    if a == b or not (0 <= a < n and 0 <= b < n):
        raise ValueError(f"invalid missing edge {missing}")
    g = clique(n)
    edges = g.edge_array()
    lo, hi = min(a, b), max(a, b)
    keep = ~((edges[:, 0] == lo) & (edges[:, 1] == hi))
    return from_edges(n, edges[keep])


def clique_union(num_cliques: int, clique_size: int) -> AdjacencyArrayGraph:
    """Disjoint union of ``num_cliques`` copies of K_{clique_size}.

    β = 1; n = num_cliques·clique_size; m = num_cliques·C(clique_size, 2);
    |MCM| = num_cliques·⌊clique_size/2⌋.  The go-to dense family for the
    sublinearity experiments (m grows quadratically in clique_size while
    the sparsifier stays near-linear in n).
    """
    if num_cliques < 0 or clique_size < 0:
        raise ValueError("num_cliques and clique_size must be non-negative")
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    return from_edges(num_cliques * clique_size, edges)


def two_cliques_with_bridge(half: int) -> AdjacencyArrayGraph:
    """Two odd cliques K_half joined by a single bridge (Obs 2.14).

    ``half`` must be odd.  n = 2·half; the unique MCM structure must use
    the bridge (vertex 0 — vertex half), so |MCM| = half exactly and any
    matching avoiding the bridge has size half − 1.
    """
    if half < 1 or half % 2 == 0:
        raise ValueError(f"half must be a positive odd integer, got {half}")
    edges: list[tuple[int, int]] = []
    for base in (0, half):
        for i in range(half):
            for j in range(i + 1, half):
                edges.append((base + i, base + j))
    edges.append((0, half))
    return from_edges(2 * half, edges)


def overlapping_cliques(
    num_cliques: int, clique_size: int, overlap: int
) -> AdjacencyArrayGraph:
    """A chain of cliques where consecutive cliques share ``overlap`` vertices.

    β ≤ 2 (every neighborhood is covered by at most two cliques).  Gives
    connected dense instances with non-trivial matching structure.
    """
    if overlap < 0 or overlap >= clique_size:
        raise ValueError("overlap must satisfy 0 <= overlap < clique_size")
    if num_cliques < 1:
        raise ValueError("num_cliques must be positive")
    stride = clique_size - overlap
    n = clique_size + (num_cliques - 1) * stride
    edges: list[tuple[int, int]] = []
    for c in range(num_cliques):
        base = c * stride
        for i in range(clique_size):
            for j in range(i + 1, clique_size):
                edges.append((base + i, base + j))
    return from_edges(n, edges)
