"""Bounded-growth and bounded-diversity families (Section 1.1).

* :func:`interval_graph` — proper-interval-style intersection graphs [48];
  bounded growth, β small.
* :func:`grid_power_graph` — the r-th power of a path/grid; bounded growth
  with β controlled by the dimension.
* :func:`bounded_diversity_graph` — a union of k cliques through each
  vertex; diversity ≤ k implies β ≤ k (Section 1.1).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.rng import resolve_rng


def interval_graph(
    num_intervals: int,
    length: float,
    span: float,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """Intersection graph of random equal-length intervals on [0, span].

    Equal-length (proper) intervals give β ≤ 2: among pairwise
    non-overlapping intervals intersecting a fixed interval I, at most one
    lies on each side of I.
    """
    if num_intervals < 0 or length <= 0 or span <= 0:
        raise ValueError("invalid interval graph parameters")
    gen = resolve_rng(seed=seed, rng=rng, owner="interval_graph")
    starts = np.sort(gen.random(num_intervals) * span)
    # Intervals i < j intersect iff starts[j] <= starts[i] + length.
    edges: list[tuple[int, int]] = []
    for i in range(num_intervals):
        j = i + 1
        while j < num_intervals and starts[j] <= starts[i] + length:
            edges.append((i, j))
            j += 1
    return from_edges(num_intervals, edges)


def grid_power_graph(side: int, power: int) -> AdjacencyArrayGraph:
    """The ``power``-th power of a ``side × side`` grid graph.

    Vertices are grid points; u ~ v iff their L1 grid distance is
    ≤ power.  Bounded growth: the r-neighborhood independence is bounded
    by a function of r only (area packing), independent of side.
    """
    if side < 1 or power < 1:
        raise ValueError("side and power must be positive")
    n = side * side
    coords = np.array([(i, j) for i in range(side) for j in range(side)])
    edges: list[tuple[int, int]] = []
    for idx in range(n):
        i, j = coords[idx]
        for di in range(-power, power + 1):
            for dj in range(-power, power + 1):
                if abs(di) + abs(dj) == 0 or abs(di) + abs(dj) > power:
                    continue
                ni, nj = i + di, j + dj
                if 0 <= ni < side and 0 <= nj < side:
                    other = ni * side + nj
                    if idx < other:
                        edges.append((idx, other))
    return from_edges(n, edges)


def bounded_diversity_graph(
    num_cliques: int,
    clique_size: int,
    diversity: int,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """A random edge-union of cliques with per-vertex clique membership ≤ diversity.

    The diversity of a vertex is the number of maximal cliques containing
    it; diversity ≤ k forces β ≤ k (each clique contributes at most one
    vertex to any independent set in a neighborhood).  We build
    ``num_cliques`` cliques of ``clique_size`` vertices each, drawing
    members only from vertices that still have membership budget.
    """
    if num_cliques < 1 or clique_size < 2 or diversity < 1:
        raise ValueError("invalid bounded diversity parameters")
    gen = resolve_rng(seed=seed, rng=rng, owner="bounded_diversity_graph")
    n = max(clique_size, (num_cliques * clique_size) // diversity + clique_size)
    budget = np.full(n, diversity, dtype=np.int64)
    edges: list[tuple[int, int]] = []
    for _ in range(num_cliques):
        available = np.flatnonzero(budget > 0)
        if available.size < clique_size:
            break
        members = gen.choice(available, size=clique_size, replace=False)
        budget[members] -= 1
        for a in range(clique_size):
            for b in range(a + 1, clique_size):
                edges.append((int(members[a]), int(members[b])))
    return from_edges(n, edges)
