"""Line graphs: β ≤ 2, the central family in distributed matching.

The line graph L(H) has a vertex per edge of H and an edge between two
H-edges that share an endpoint.  An independent set inside the
neighborhood of an H-edge e = (u, v) corresponds to a set of pairwise
non-adjacent H-edges all touching u or v — at most one per endpoint —
hence β(L(H)) ≤ 2 (Section 1.1).  Matchings in L(H) model *edge*
scheduling in H, the motivating application of example
``examples/job_scheduling_line_graph.py``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.rng import resolve_rng


def line_graph(
    num_vertices: int, edges: list[tuple[int, int]]
) -> tuple[AdjacencyArrayGraph, list[tuple[int, int]]]:
    """The line graph of the host graph H = (num_vertices, edges).

    Returns
    -------
    (graph, edge_labels):
        ``graph`` is L(H); vertex ``i`` of L(H) corresponds to host edge
        ``edge_labels[i]``.
    """
    labels = sorted({(min(u, v), max(u, v)) for u, v in edges})
    incident: list[list[int]] = [[] for _ in range(num_vertices)]
    for i, (u, v) in enumerate(labels):
        incident[u].append(i)
        incident[v].append(i)
    lg_edges: list[tuple[int, int]] = []
    for bucket in incident:
        for a in range(len(bucket)):
            for b in range(a + 1, len(bucket)):
                lg_edges.append((bucket[a], bucket[b]))
    return from_edges(len(labels), lg_edges), labels


def random_line_graph(
    host_vertices: int,
    host_edge_probability: float,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> AdjacencyArrayGraph:
    """Line graph of a G(n, p) host graph; β ≤ 2.

    Dense hosts give line graphs with Θ(n·d) edges where d is the host's
    average degree, so this family stresses the sparsifier on irregular
    degree distributions.
    """
    if not 0.0 <= host_edge_probability <= 1.0:
        raise ValueError(f"probability out of range: {host_edge_probability}")
    gen = resolve_rng(seed=seed, rng=rng, owner="random_line_graph")
    idx = np.arange(host_vertices, dtype=np.int64)
    u, v = np.meshgrid(idx, idx, indexing="ij")
    mask = u < v
    pairs = np.column_stack((u[mask], v[mask]))
    keep = gen.random(pairs.shape[0]) < host_edge_probability
    host_edges = [tuple(int(x) for x in row) for row in pairs[keep]]
    graph, _ = line_graph(host_vertices, host_edges)
    return graph
