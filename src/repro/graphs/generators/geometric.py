"""Geometric intersection families: unit-disk and quasi-unit-disk graphs.

Unit-disk graphs are bounded-growth (Section 1.1): two points at distance
≤ 1 are adjacent, and a packing argument bounds the number of pairwise
independent neighbors of any vertex by a constant (≤ 5 in the plane), so
β ≤ 5.  They model wireless networks — the workload behind
``examples/wireless_scheduling.py``.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.graphs.builder import from_edges
from repro.instrument.rng import resolve_rng


def unit_disk_graph(
    num_points: int,
    area_side: float,
    radius: float = 1.0,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> tuple[AdjacencyArrayGraph, np.ndarray]:
    """Random unit-disk graph on uniform points in an ``area_side`` square.

    β ≤ 5 by the planar packing bound.  Density is controlled by the point
    rate num_points / area_side²: shrinking the area with n fixed densifies
    the graph toward a clique while β stays bounded.

    Returns
    -------
    (graph, points):
        ``points`` is the ``(n, 2)`` coordinate array (useful for plotting
        and for the wireless example).
    """
    if num_points < 0:
        raise ValueError(f"num_points must be non-negative, got {num_points}")
    if area_side <= 0 or radius <= 0:
        raise ValueError("area_side and radius must be positive")
    gen = resolve_rng(seed=seed, rng=rng, owner="unit_disk_graph")
    points = gen.random((num_points, 2)) * area_side
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=radius, output_type="ndarray")
    return from_edges(num_points, pairs), points


def quasi_unit_disk_graph(
    num_points: int,
    area_side: float,
    inner_radius: float,
    outer_radius: float,
    rng: np.random.Generator | int | None = None,
    *,
    seed: int | None = None,
) -> tuple[AdjacencyArrayGraph, np.ndarray]:
    """Quasi-unit-disk graph [62]: certain edges below ``inner_radius``,
    impossible above ``outer_radius``, random in between.

    Still bounded-growth, with β bounded by a packing constant depending on
    outer_radius / inner_radius.
    """
    if not 0 < inner_radius <= outer_radius:
        raise ValueError("need 0 < inner_radius <= outer_radius")
    gen = resolve_rng(seed=seed, rng=rng, owner="quasi_unit_disk_graph")
    points = gen.random((num_points, 2)) * area_side
    tree = cKDTree(points)
    pairs = tree.query_pairs(r=outer_radius, output_type="ndarray")
    if pairs.shape[0] == 0:
        return from_edges(num_points, pairs), points
    dist = np.linalg.norm(points[pairs[:, 0]] - points[pairs[:, 1]], axis=1)
    keep = (dist <= inner_radius) | (gen.random(pairs.shape[0]) < 0.5)
    return from_edges(num_points, pairs[keep]), points
