"""The unified facade: one import surface for the whole reproduction.

The package grew one subpackage per computation model (sequential,
distributed, streaming, MPC, dynamic), each with its own entry point and
result type.  This module is the coherent top layer over them:

* :func:`sparsify` — build the paper's random sparsifier G_Δ from the
  structural parameters (β, ε) instead of a raw Δ;
* :func:`approx_mcm` — compute a (1+ε)-approximate maximum cardinality
  matching with any backend, behind one signature and one result type;
* :class:`Pipeline` — a frozen configuration bundling (β, ε, backend,
  sampler, seed) for repeated application to many graphs.

Randomness follows the package-wide convention: every function accepts
``seed=`` (an integer) *or* ``rng=`` (an existing
:class:`numpy.random.Generator`), keyword-only, never both.

Debug mode: when the environment variable ``REPRO_CONTRACTS=1`` is set,
every facade call re-validates its output against the paper's local
invariants (:mod:`repro.contracts`) — matchings edge-by-edge, the
sparsifier's Δ marking bound vertex-by-vertex — and raises
:class:`~repro.contracts.ContractViolation` on corruption.

Quickstart
----------
>>> from repro.api import approx_mcm, sparsify
>>> from repro.graphs.generators import clique_union
>>> g = clique_union(10, 40)                      # dense, beta = 1
>>> res = sparsify(g, beta=1, epsilon=0.2, seed=0)
>>> run = approx_mcm(g, beta=1, epsilon=0.2, seed=0)
>>> run.matching.size >= (g.num_vertices // 2) / 1.2
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Literal

import numpy as np

from repro.contracts import (
    check_matching,
    check_sparsifier_degree,
    contracts_enabled,
)
from repro.core.delta import DeltaPolicy
from repro.core.sparsifier import SamplerName, SparsifierResult, build_sparsifier
from repro.graphs.adjacency import AdjacencyArrayGraph
from repro.instrument.rng import resolve_rng
from repro.matching.matching import Matching

Backend = Literal["sequential", "distributed", "streaming", "mpc"]

BACKENDS: tuple[str, ...] = ("sequential", "distributed", "streaming", "mpc")


@dataclass(frozen=True)
class ApproxMatchingResult:
    """Backend-independent result of :func:`approx_mcm`.

    Attributes
    ----------
    matching:
        The (1+ε)-approximate matching, valid in the input graph.
    backend:
        Which computation model produced it.
    delta:
        The sparsifier parameter Δ the backend derived from (β, ε).
    report:
        The backend's native result object
        (:class:`~repro.sequential.pipeline.SequentialResult`,
        :class:`~repro.distributed.pipeline.DistributedRunReport`, …)
        for model-specific accounting: probes, rounds, messages,
        passes, memory.
    """

    matching: Matching
    backend: str
    delta: int
    report: Any


def sparsify(
    graph: AdjacencyArrayGraph,
    *,
    beta: int,
    epsilon: float,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    sampler: SamplerName = "pos_array",
    policy: DeltaPolicy | None = None,
) -> SparsifierResult:
    """Build the random sparsifier G_Δ from structural parameters.

    Derives Δ(β, ε) via ``policy`` (default: the calibrated practical
    constant) and delegates to
    :func:`~repro.core.sparsifier.build_sparsifier`.

    Parameters
    ----------
    graph:
        Input graph with neighborhood independence ≤ ``beta``.
    beta, epsilon:
        Structure and quality parameters of Theorem 2.1.
    seed, rng:
        Uniform randomness keywords (one or neither, not both).
    sampler:
        ``"pos_array"`` (deterministic probe count), ``"rejection"``,
        or ``"vectorized"`` (bulk numpy for large graphs).
    policy:
        Δ policy override; defaults to :meth:`DeltaPolicy.practical`.
    """
    gen = resolve_rng(seed=seed, rng=rng, owner="sparsify")
    pol = policy or DeltaPolicy.practical()
    delta = pol.delta(beta, epsilon, graph.num_vertices)
    result = build_sparsifier(graph, delta, rng=gen, sampler=sampler)
    if contracts_enabled():
        check_sparsifier_degree(result, delta, graph=graph)
    return result


def approx_mcm(
    graph: AdjacencyArrayGraph,
    *,
    beta: int,
    epsilon: float,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    backend: Backend = "sequential",
    **options: Any,
) -> ApproxMatchingResult:
    """Compute a (1+ε)-approximate MCM with the chosen backend.

    Parameters
    ----------
    graph:
        Input graph with neighborhood independence ≤ ``beta``.
    beta, epsilon:
        Structure and quality parameters.
    seed, rng:
        Uniform randomness keywords (one or neither, not both).
    backend:
        ``"sequential"`` (Theorem 3.1, sublinear probes — default),
        ``"distributed"`` (Theorem 3.2, four-stage CONGEST pipeline),
        ``"streaming"`` (one-pass semi-streaming), or ``"mpc"``
        (three-round MPC; option ``num_machines``, default 4).
    **options:
        Forwarded to the backend entry point (e.g. ``sampler=`` for
        sequential, ``num_machines=`` / ``memory_per_machine=`` for
        mpc, ``max_rounds=`` for distributed).

    Returns
    -------
    ApproxMatchingResult
        Matching plus the backend's native accounting report.
    """
    gen = resolve_rng(seed=seed, rng=rng, owner="approx_mcm")
    matching: Matching
    delta: int
    if backend == "sequential":
        from repro.sequential.pipeline import approximate_matching

        report = approximate_matching(
            graph, beta=beta, epsilon=epsilon, rng=gen, **options
        )
        matching, delta = report.matching, report.delta
    elif backend == "distributed":
        from repro.distributed.pipeline import distributed_approx_matching

        report = distributed_approx_matching(
            graph, beta=beta, epsilon=epsilon, rng=gen, **options
        )
        matching, delta = report.matching, report.delta
    elif backend == "streaming":
        from repro.streaming.matching import streaming_approx_matching
        from repro.streaming.stream import EdgeStream

        stream = EdgeStream.from_graph(graph)
        report = streaming_approx_matching(
            stream, beta=beta, epsilon=epsilon, rng=gen, **options
        )
        matching, delta = report.matching, report.delta
    elif backend == "mpc":
        from repro.mpc.matching import mpc_approx_matching

        report = mpc_approx_matching(
            graph, beta=beta, epsilon=epsilon, rng=gen,
            num_machines=options.pop("num_machines", 4), **options
        )
        matching, delta = report.matching, report.delta
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if contracts_enabled():
        check_matching(graph, matching)
    return ApproxMatchingResult(
        matching=matching, backend=backend, delta=delta, report=report
    )


@dataclass(frozen=True)
class Pipeline:
    """A reusable (β, ε, backend) configuration.

    Bind the structural parameters once, then apply the same pipeline to
    many graphs; each application derives a fresh child generator from
    the configured seed, so a ``Pipeline`` is reproducible end to end
    yet draws independent randomness per graph.

    Examples
    --------
    >>> from repro.api import Pipeline
    >>> from repro.graphs.generators import clique_union
    >>> pipe = Pipeline(beta=1, epsilon=0.25, seed=0)
    >>> run = pipe.approx_mcm(clique_union(6, 30))
    >>> run.backend
    'sequential'
    """

    beta: int
    epsilon: float
    backend: Backend = "sequential"
    sampler: SamplerName = "pos_array"
    seed: int | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if not 0 < self.epsilon:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        # Root generator for per-application child spawning (frozen
        # dataclass, so it is attached outside the declared fields).
        object.__setattr__(self, "_root", np.random.default_rng(self.seed))

    def _child_rng(self) -> np.random.Generator:
        return self._root.spawn(1)[0]  # type: ignore[attr-defined]

    def sparsify(self, graph: AdjacencyArrayGraph) -> SparsifierResult:
        """Build G_Δ for ``graph`` under this configuration."""
        return sparsify(
            graph, beta=self.beta, epsilon=self.epsilon,
            rng=self._child_rng(), sampler=self.sampler,
        )

    def approx_mcm(self, graph: AdjacencyArrayGraph) -> ApproxMatchingResult:
        """Compute an approximate MCM for ``graph`` under this
        configuration (sampler forwarded for the sequential backend)."""
        options = dict(self.options)
        if self.backend == "sequential":
            options.setdefault("sampler", self.sampler)
        return approx_mcm(
            graph, beta=self.beta, epsilon=self.epsilon,
            rng=self._child_rng(), backend=self.backend, **options,
        )


__all__ = [
    "ApproxMatchingResult",
    "BACKENDS",
    "Backend",
    "Pipeline",
    "approx_mcm",
    "sparsify",
]
