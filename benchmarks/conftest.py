"""Shared helpers for the benchmark suite.

Each ``bench_eN_*.py`` module pairs with experiment ``eN``:

* ``test_kernel_*`` benchmarks time the hot operation behind the
  experiment (sparsifier construction, a pipeline run, an update batch);
* ``test_table_*`` regenerates a reduced-size version of the experiment
  table inside the benchmark timer and asserts its headline invariant.

Run ``pytest benchmarks/ --benchmark-only`` for timings, or execute an
experiment module directly (``python -m repro.cli eN``) for the
full-size table.
"""

from __future__ import annotations



def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer.

    Table-regeneration functions are too slow for pytest-benchmark's
    auto-calibration; one timed round is enough for reporting.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
