"""E1 — Theorem 2.1: sparsifier quality (kernel: G_Δ construction)."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e1_quality import run
from repro.graphs.generators import clique_union


def test_kernel_build_sparsifier(benchmark):
    """Time one G_Δ construction on a dense clique union (n=480)."""
    graph = clique_union(8, 60)
    result = benchmark(build_sparsifier, graph, 12, seed=0)
    assert result.subgraph.num_edges <= graph.num_vertices * 12


def test_table_e1(benchmark):
    """Regenerate (reduced) E1 and assert every trial is within 1+eps."""
    table = once(benchmark, run, epsilons=(0.5, 0.3), trials=3, seed=0)
    for row in table.rows:
        eps, worst = row[3], row[5]
        assert worst <= 1 + eps
    print("\n" + table.render())


def test_replication_wilson(benchmark):
    """Statistical form of E1: 30 trials + a Wilson interval on the
    success probability (the honest reading of 'with high probability')."""
    from repro.experiments.stats import replicate_quality

    graph = clique_union(4, 60)

    rep = benchmark.pedantic(
        replicate_quality, args=(graph, 9, 0.3, 30), kwargs={"seed": 0},
        rounds=1, iterations=1,
    )
    assert rep.successes == rep.trials
    assert rep.confidence_low > 0.85
    print(f"\nE1-replication: {rep.successes}/{rep.trials} within 1.3, "
          f"success prob in [{rep.confidence_low:.3f}, "
          f"{rep.confidence_high:.3f}] (95% Wilson), "
          f"worst ratio {rep.worst_ratio:.4f}")


if __name__ == "__main__":
    print(run())
