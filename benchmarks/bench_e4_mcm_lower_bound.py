"""E4 — Lemma 2.2: |MCM| >= n'/(beta+2) (kernel: exact blossom MCM)."""

from conftest import once

from repro.experiments.e4_mcm_lower_bound import run
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


def test_kernel_exact_mcm(benchmark):
    """Time the exact matcher on a dense clique union (n=240)."""
    graph = clique_union(4, 60)
    matching = benchmark(mcm_exact, graph)
    assert matching.size == 120


def test_table_e4(benchmark):
    table = once(benchmark, run, seed=0)
    assert all(row[-1] for row in table.rows)
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
