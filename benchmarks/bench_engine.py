"""Serial-vs-parallel benchmark for the experiment engine.

Runs the same two workloads at ``workers=1`` and ``workers=N`` (default
4), asserts the outputs are identical — the engine's core contract — and
reports wall-clock times, speedups, and the host CPU count as JSON.

The speedup numbers are only meaningful relative to ``cpu_count``: on a
single-core host the parallel path cannot beat serial (process pools add
pickling and fork overhead with no extra parallelism), and the JSON
records that honestly instead of hiding it.  The determinism assertions
are CPU-count independent.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py \
        --output results/bench_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.experiments.e1_quality import run as run_e1
from repro.experiments.stats import replicate_quality
from repro.graphs.generators import clique_union


def _timed(fn, *args, **kwargs):
    # Wall-clock is the *measurand* of this benchmark, not hidden
    # nondeterminism leaking into results — hence the R2 pragmas.
    start = time.perf_counter()  # repro-lint: ignore[R2]
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start  # repro-lint: ignore[R2]


def bench_e1(workers: int) -> dict:
    """E1 quality table: graph-rebuild-in-worker fan-out."""
    kwargs = dict(epsilons=(0.5, 0.3), trials=4, seed=0)
    serial, t_serial = _timed(run_e1, **kwargs, workers=1)
    parallel, t_parallel = _timed(run_e1, **kwargs, workers=workers)
    assert serial.rows == parallel.rows, "E1 parallel run diverged from serial"
    return {
        "workload": "e1_quality(epsilons=(0.5, 0.3), trials=4, seed=0)",
        "tasks": len(serial.rows) * 2 * 4,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_parallel, 4),
        "speedup": round(t_serial / t_parallel, 3),
        "identical_output": True,
    }


def bench_replication(workers: int) -> dict:
    """Wilson-interval replication: context-broadcast fan-out."""
    graph = clique_union(8, 60)
    kwargs = dict(delta=9, epsilon=0.3, trials=32, seed=0)
    serial, t_serial = _timed(replicate_quality, graph, **kwargs, workers=1)
    parallel, t_parallel = _timed(
        replicate_quality, graph, **kwargs, workers=workers
    )
    assert serial == parallel, "replication parallel run diverged from serial"
    return {
        "workload": "replicate_quality(clique_union(8, 60), delta=9, "
                    "epsilon=0.3, trials=32, seed=0)",
        "tasks": 32,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_parallel, 4),
        "speedup": round(t_serial / t_parallel, 3),
        "identical_output": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="parallel worker count to benchmark (default 4)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "engine serial vs parallel",
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "workloads": [bench_e1(args.workers), bench_replication(args.workers)],
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
