"""Cross-cutting kernel benchmarks (not tied to one experiment).

Times the hot algorithmic primitives against each other and against
NetworkX, so performance regressions in the substrates are visible
independently of the experiment tables.
"""

import networkx as nx

from repro.core.sparsifier import build_sparsifier
from repro.graphs.builder import to_networkx
from repro.graphs.generators import clique_union, erdos_renyi, unit_disk_graph
from repro.matching.blossom import mcm_exact
from repro.matching.greedy import greedy_maximal_matching
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.graphs.generators import random_bipartite


def test_blossom_on_sparsifier(benchmark):
    """The pipeline's real matcher workload: blossom on a sparsifier."""
    g = clique_union(6, 60)
    sp = build_sparsifier(g, 9, seed=0).subgraph
    m = benchmark(mcm_exact, sp)
    assert m.size == 180


def test_networkx_exact_reference(benchmark):
    """NetworkX's exact matcher on the same sparsifier (reference)."""
    g = clique_union(6, 60)
    sp = to_networkx(build_sparsifier(g, 9, seed=0).subgraph)
    result = benchmark(
        nx.max_weight_matching, sp, True
    )
    assert len(result) == 180


def test_greedy_kernel(benchmark):
    g = erdos_renyi(400, 0.1, seed=1)
    m = benchmark(greedy_maximal_matching, g)
    assert m.is_maximal_for(g)


def test_hopcroft_karp_kernel(benchmark):
    g = random_bipartite(200, 200, 0.05, seed=2)
    m = benchmark(hopcroft_karp, g)
    assert m.size > 0


def test_pos_array_vs_rejection_pos(benchmark):
    g = clique_union(4, 100)
    res = benchmark(build_sparsifier, g, 12, 0, "pos_array")
    assert res.subgraph.num_edges > 0


def test_pos_array_vs_rejection_rej(benchmark):
    g = clique_union(4, 100)
    res = benchmark(build_sparsifier, g, 12, 0, "rejection")
    assert res.subgraph.num_edges > 0


def test_unit_disk_generation(benchmark):
    graph, _ = benchmark(unit_disk_graph, 1000, 8.0, 1.0, 3)
    assert graph.num_vertices == 1000


def test_beta_exact_kernel(benchmark):
    from repro.graphs.neighborhood import neighborhood_independence_exact

    g, _ = unit_disk_graph(300, 4.0, seed=4)
    beta = benchmark(neighborhood_independence_exact, g, 120)
    assert 1 <= beta <= 5
