"""E17 — the adaptive-adversary separation between the two dynamic schemes."""

from conftest import once

from repro.experiments.e17_adaptive_separation import run


def test_table_e17(benchmark):
    table = once(benchmark, run, steps=500, trials=2, seed=0)
    rows = {(row[0], row[1]): row[2] for row in table.rows}
    thm = [v for (a, k), v in rows.items() if a.startswith("Thm") ]
    obl_adaptive = [v for (a, k), v in rows.items()
                    if a.startswith("oblivious") and k == "adaptive"]
    # Theorem 3.5 stays within 1+eps everywhere.
    assert all(v <= 1.4 + 1e-9 for v in thm)
    # The oblivious scheme degrades under adaptivity beyond Thm 3.5's
    # adaptive cell.
    thm_adaptive = rows[[k for k in rows if k[0].startswith("Thm")
                         and k[1] == "adaptive"][0]]
    assert obl_adaptive[0] >= thm_adaptive - 1e-9
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
