"""E16 — wall-clock scale: vectorized sparsify+match vs full-graph greedy."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e16_scale import big_clique_union, run


def test_kernel_vectorized_sparsifier(benchmark):
    """Time the bulk sampler on ~450k edges."""
    graph = big_clique_union(90, 100)
    res = benchmark(build_sparsifier, graph, 10, 0, "vectorized", None, False)
    assert res.subgraph.num_edges <= graph.num_vertices * 10


def test_table_e16(benchmark):
    table = once(benchmark, run, total_vertices=6000,
                 clique_sizes=(30, 60, 100), seed=0)
    for row in table.rows:
        ours_ratio = row[6]
        assert ours_ratio <= 1.1
    # Full-graph greedy time grows with m; pipeline time stays flatter:
    # compare growth factors between the sparsest and densest rows.
    pipeline_growth = table.rows[-1][4] / max(1e-9, table.rows[0][4])
    full_growth = table.rows[-1][5] / max(1e-9, table.rows[0][5])
    assert pipeline_growth < full_growth
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
