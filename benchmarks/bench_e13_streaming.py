"""E13 — streaming: one-pass reservoir sparsifier vs greedy."""

from conftest import once

from repro.experiments.e13_streaming import run
from repro.graphs.generators import clique_union
from repro.streaming.reservoir import streaming_sparsifier
from repro.streaming.stream import EdgeStream


def test_kernel_reservoir_pass(benchmark):
    """Time one reservoir pass over a 38k-edge stream."""
    graph = clique_union(3, 160)

    def kernel():
        return streaming_sparsifier(EdgeStream.from_graph(graph), 9, seed=0)

    sparsifier, memory = benchmark(kernel)
    assert memory < graph.num_edges


def test_table_e13(benchmark):
    table = once(benchmark, run, clique_sizes=(20, 40, 80), seed=0)
    for row in table.rows:
        ours_ratio, greedy_ratio = row[4], row[5]
        assert ours_ratio <= 1.31
        assert ours_ratio <= greedy_ratio + 1e-9
    assert table.rows[-1][3] < table.rows[0][3]  # memory fraction falls
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
