"""E3 — Observation 2.12: arboricity of G_Δ (kernel: degeneracy)."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e3_arboricity import run
from repro.graphs.arboricity import degeneracy
from repro.graphs.generators import clique_union


def test_kernel_degeneracy(benchmark):
    """Time the degeneracy (arboricity upper bound) of a sparsifier."""
    sparsifier = build_sparsifier(clique_union(8, 60), 10, seed=0).subgraph
    d, _ = benchmark(degeneracy, sparsifier)
    assert d <= 2 * 10


def test_table_e3(benchmark):
    table = once(benchmark, run, seed=0)
    assert all(row[-1] for row in table.rows)
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
