"""Benchmark for the dynamic-matching service: throughput + latency SLO.

Starts an in-process :class:`~repro.service.server.BackgroundServer`,
drives it with deterministic load-generator bursts over the real TCP
stack (oblivious and adaptive adversaries, several batch sizes), and
reports per-workload throughput plus the server's own latency
percentiles as JSON.

Two assertions make it a regression gate, not just a stopwatch:

* **latency budget** — every workload's p99 per-update latency must sit
  under the session's configured budget (the Theorem 3.5 work cap's SLO
  counterpart, ``DEFAULT_BUDGET_MS``);
* **replay determinism** — each workload's journal is replayed offline
  and must land on the served fingerprint byte-for-byte.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py \
        --output results/bench_service.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from pathlib import Path

from repro.service.client import ServiceClient
from repro.service.journal import replay_journal
from repro.service.loadgen import run_load
from repro.service.metrics import DEFAULT_BUDGET_MS
from repro.service.server import BackgroundServer

#: (name, adversary, steps, batch_size) per workload.
WORKLOADS = (
    ("oblivious-single", "oblivious", 600, 1),
    ("oblivious-batched", "oblivious", 600, 32),
    ("adaptive-batched", "adaptive", 600, 16),
)


def bench_workload(client, journal_dir, name, adversary, steps, batch_size,
                   seed):
    """Run one loadgen burst; verify replay; return a JSON-ready row."""
    report = run_load(
        client, name, adversary=adversary, steps=steps,
        batch_size=batch_size, seed=seed,
    )
    latency = report["stats"]["latency"]
    replayed = replay_journal(Path(journal_dir) / f"{name}.jsonl")
    replay_ok = replayed.fingerprint() == report["fingerprint"]
    assert replay_ok, f"{name}: journal replay diverged from served state"
    assert latency["p99_ms"] <= latency["budget_ms"], (
        f"{name}: p99 {latency['p99_ms']}ms over the "
        f"{latency['budget_ms']}ms budget"
    )
    return {
        "workload": name,
        "adversary": adversary,
        "steps": steps,
        "batch_size": batch_size,
        "applied": report["applied"],
        "attacks": report["attacks"],
        "elapsed_seconds": report["elapsed_seconds"],
        "updates_per_second": report["updates_per_second"],
        "batches": report["stats"]["counters"].get("batches", 0),
        "latency": latency,
        "queue": report["stats"]["queue"],
        "matching_size": report["size"],
        "p99_under_budget": True,
        "replay_identical": replay_ok,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for every workload (default 0)")
    parser.add_argument("--steps", type=int, default=None,
                        help="override the per-workload update count")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    rows = []
    with tempfile.TemporaryDirectory() as journal_dir:
        with BackgroundServer(journal_dir=journal_dir) as server:
            with ServiceClient(server.host, server.port) as client:
                for name, adversary, steps, batch_size in WORKLOADS:
                    rows.append(bench_workload(
                        client, journal_dir, name, adversary,
                        args.steps or steps, batch_size, args.seed,
                    ))

    report = {
        "benchmark": "dynamic-matching service throughput and latency",
        "python": platform.python_version(),
        "budget_ms": DEFAULT_BUDGET_MS,
        "seed": args.seed,
        "workloads": rows,
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
