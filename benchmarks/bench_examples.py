"""Keep the example scripts green: run each one under the bench timer.

Examples are user-facing documentation; this suite guarantees they stay
executable as the library evolves (running them in the fast test suite
would be too slow, so they live with the benchmarks).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(benchmark, script, capsys):
    def run():
        runpy.run_path(str(script), run_name="__main__")

    benchmark.pedantic(run, rounds=1, iterations=1)
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"
