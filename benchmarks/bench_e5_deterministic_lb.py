"""E5 — Lemma 2.13: the adversary game vs deterministic marking."""

from conftest import once

from repro.core.lower_bounds import run_deterministic_lower_bound
from repro.experiments.e5_deterministic_lb import run


def test_kernel_adversary_game(benchmark):
    """Time one full Lemma 2.13 game (n=120, delta=6)."""
    report = benchmark(run_deterministic_lower_bound, 120, 6)
    assert report.ratio >= report.paper_bound


def test_table_e5(benchmark):
    table = once(benchmark, run, seed=0)
    for row in table.rows:
        det_ratio, paper_bound, rand_ratio = row[2], row[3], row[4]
        assert det_ratio >= paper_bound
        assert rand_ratio <= 1.25
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
