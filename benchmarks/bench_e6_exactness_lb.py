"""E6 — Observation 2.14: exact-preservation probability."""

from conftest import once

from repro.core.lower_bounds import empirical_exact_preservation
from repro.experiments.e6_exactness_lb import run


def test_kernel_preservation_trials(benchmark):
    """Time a 50-trial bridge-survival estimate (n=102)."""
    p = benchmark(empirical_exact_preservation, 51, 10, 50, 0)
    assert 0.0 <= p <= 1.0


def test_table_e6(benchmark):
    table = once(benchmark, run, half=51, trials=120, seed=0)
    for row in table.rows:
        closed, bound, empirical = row[2], row[3], row[4]
        assert closed <= bound + 1e-9
        assert abs(empirical - closed) < 0.2
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
