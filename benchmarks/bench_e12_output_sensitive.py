"""E12 — output-sensitive size bound (Obs 2.10) on star unions."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e12_output_sensitive import run, star_union


def test_kernel_star_union_sparsify(benchmark):
    """Time sparsification of the high-beta, small-MCM instance."""
    graph = star_union(12, 32)
    result = benchmark(build_sparsifier, graph, 6, 0)
    assert result.subgraph.num_edges <= graph.num_edges


def test_table_e12(benchmark):
    table = once(benchmark, run, seed=0)
    for row in table.rows:
        edges, sharp, naive, sharper = row[3], row[4], row[5], row[6]
        assert edges <= sharp <= naive
        assert sharper
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
