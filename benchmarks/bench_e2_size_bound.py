"""E2 — Observation 2.10: sparsifier size bound."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e2_size_bound import run
from repro.graphs.generators import clique_union
from repro.matching.blossom import mcm_exact


def test_kernel_size_measurement(benchmark):
    """Time sparsify + edge-count on the densest standard instance."""
    graph = clique_union(4, 60)

    def kernel():
        return build_sparsifier(graph, 9, seed=0).subgraph.num_edges

    edges = benchmark(kernel)
    assert edges <= 2 * mcm_exact(graph).size * (9 + 1)


def test_table_e2(benchmark):
    table = once(benchmark, run, seed=0)
    assert all(row[-1] for row in table.rows)  # bound holds everywhere
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
