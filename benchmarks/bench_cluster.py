"""Scaling benchmark for the sharded cluster: shards vs. updates/sec.

For each shard count (1, 2, 4, 8 by default) this starts a full
cluster — real worker processes behind a
:class:`~repro.cluster.runner.BackgroundCluster` router — and drives it
with several concurrent load-generator *processes*, each running the
deterministic multi-session loadgen over its own slice of the session
space (disjoint ``--session-offset`` ranges).  The report is the
scaling curve ``shards -> updates/sec`` plus, per configuration, the
shard-aware replay verification.

Three gates:

* **replay identity** — after every configuration, each shard's
  journals replay byte-identically (``verify_cluster``: double replay
  + placement consistency).  Always enforced; CPU-independent.
* **placement determinism** — a session's final fingerprint must be
  identical at every shard count (placement moves sessions between
  shards, but never changes their update streams).  Always enforced.
* **scaling** — 4 shards must reach at least 2x single-shard
  throughput.  Enforced only when the host has >= 4 CPUs (the honest
  precedent of ``bench_engine.py``: on fewer cores the curve is
  recorded but cannot show parallel speedup).

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py \
        --output results/bench_cluster.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.cluster.replay import verify_cluster
from repro.cluster.runner import BackgroundCluster
from repro.cluster.supervisor import _worker_env
from repro.instrument.timers import Timer

#: The scaling gate: updates/sec at 4 shards vs. 1 shard.
REQUIRED_SPEEDUP_AT_4 = 2.0

#: Cores needed before the scaling gate is meaningful (and enforced).
MIN_CPUS_FOR_GATE = 4


def _spawn_loadgen(host: str, port: int, sessions: int, offset: int,
                   steps: int, batch: int, seed: int,
                   out_path: Path) -> subprocess.Popen:
    """One load-generator process over its own session-space slice."""
    command = [
        sys.executable, "-m", "repro.service.loadgen",
        "--host", host, "--port", str(port),
        "--session", "bench",
        "--sessions", str(sessions),
        "--session-offset", str(offset),
        "--steps", str(steps),
        "--batch", str(batch),
        "--seed", str(seed),
        "--out", str(out_path),
    ]
    return subprocess.Popen(command, env=_worker_env())


def run_config(shards: int, clients: int, sessions_per_client: int,
               steps: int, batch: int, seed: int,
               journal_root: Path) -> dict:
    """Benchmark one shard count; returns its JSON-ready row.

    ``clients`` loadgen processes run concurrently, client ``k``
    driving sessions ``bench-[k*M, (k+1)*M)``; throughput is total
    applied updates over the wall-clock of the whole burst.  The
    cluster's journals land under ``journal_root`` and are verified by
    replay after the cluster has drained and stopped.
    """
    journal_root.mkdir(parents=True, exist_ok=True)
    report_dir = Path(tempfile.mkdtemp(prefix="bench-cluster-"))
    with BackgroundCluster(shards=shards, journal_dir=journal_root) as cluster:
        procs = []
        with Timer() as timer:
            for k in range(clients):
                procs.append(_spawn_loadgen(
                    cluster.host or "127.0.0.1", int(cluster.port or 0),
                    sessions_per_client, k * sessions_per_client,
                    steps, batch, seed, report_dir / f"client-{k}.json",
                ))
            failures = [k for k, proc in enumerate(procs)
                        if proc.wait(timeout=600) != 0]
        if failures:
            raise RuntimeError(f"loadgen client(s) {failures} failed "
                               f"at {shards} shard(s)")
    assert cluster.worker_exit_codes is not None
    assert all(code == 0 for code in cluster.worker_exit_codes), (
        f"shard worker exit codes {cluster.worker_exit_codes} at "
        f"{shards} shard(s): graceful SIGTERM drain failed"
    )

    reports = [json.loads((report_dir / f"client-{k}.json").read_text())
               for k in range(clients)]
    applied = sum(report["applied"] for report in reports)
    elapsed = timer.elapsed
    fingerprints = {
        entry["session"]: entry["fingerprint"]
        for report in reports for entry in report["per_session"]
    }

    verification = verify_cluster(journal_root)
    replayed = {
        entry["session"]: entry["fingerprint"]
        for shard_reports in verification["per_shard"].values()
        for entry in shard_reports
    }
    mismatched = sorted(
        name for name, fingerprint in fingerprints.items()
        if replayed.get(name) != fingerprint
    )
    assert not mismatched, (
        f"replayed fingerprints diverged from served state at "
        f"{shards} shard(s): {mismatched}"
    )
    return {
        "shards": shards,
        "clients": clients,
        "sessions": clients * sessions_per_client,
        "steps_per_session": steps,
        "applied": applied,
        "elapsed_seconds": round(elapsed, 4),
        "updates_per_second": round(applied / elapsed, 1) if elapsed else None,
        "worker_exit_codes": cluster.worker_exit_codes,
        "replay": {
            "sessions": verification["sessions"],
            "updates": verification["updates"],
            "per_shard_sessions": [
                len(verification["per_shard"][shard])
                for shard in sorted(verification["per_shard"])
            ],
            "identical": True,
        },
        "fingerprints": dict(sorted(fingerprints.items())),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", default="1,2,4,8",
                        help="comma-separated shard counts (default 1,2,4,8)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent loadgen processes (default 4)")
    parser.add_argument("--sessions-per-client", type=int, default=2,
                        help="sessions each client drives (default 2)")
    parser.add_argument("--steps", type=int, default=300,
                        help="updates per session (default 300)")
    parser.add_argument("--batch", type=int, default=16,
                        help="loadgen batch op size (default 16)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root loadgen seed (default 0)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    shard_counts = [int(part) for part in args.shards.split(",") if part]
    cpu_count = os.cpu_count() or 1
    rows = []
    with tempfile.TemporaryDirectory() as root:
        for shards in shard_counts:
            rows.append(run_config(
                shards, args.clients, args.sessions_per_client,
                args.steps, args.batch, args.seed,
                Path(root) / f"shards-{shards}",
            ))

    # Placement determinism: shard count must not change any session's
    # final state — only where its journal lives.
    reference = rows[0]["fingerprints"]
    for row in rows[1:]:
        assert row["fingerprints"] == reference, (
            f"fingerprints changed between {rows[0]['shards']} and "
            f"{row['shards']} shard(s): sharding altered session state"
        )

    by_shards = {row["shards"]: row["updates_per_second"] for row in rows}
    speedup_at_4 = (round(by_shards[4] / by_shards[1], 2)
                    if 1 in by_shards and 4 in by_shards and by_shards[1]
                    else None)
    gate_enforced = speedup_at_4 is not None and cpu_count >= MIN_CPUS_FOR_GATE
    if gate_enforced:
        assert speedup_at_4 >= REQUIRED_SPEEDUP_AT_4, (
            f"4-shard speedup {speedup_at_4}x below the required "
            f"{REQUIRED_SPEEDUP_AT_4}x on a {cpu_count}-CPU host"
        )

    report = {
        "benchmark": "sharded cluster scaling (shards vs updates/sec)",
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "seed": args.seed,
        "configs": rows,
        "scaling": {
            "curve": {str(shards): by_shards[shards]
                      for shards in sorted(by_shards)},
            "speedup_at_4_shards": speedup_at_4,
            "required_speedup": REQUIRED_SPEEDUP_AT_4,
            "gate_enforced": gate_enforced,
            "gate_note": (
                "scaling gate enforced" if gate_enforced else
                f"recorded only: needs >= {MIN_CPUS_FOR_GATE} CPUs "
                f"(host has {cpu_count}) and both 1- and 4-shard runs"
            ),
            "replay_identity_enforced": True,
            "placement_determinism_enforced": True,
        },
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
