"""E10 — Theorem 3.5: dynamic update work and adaptive-adversary safety."""

from conftest import once

from repro.dynamic.adversaries import ObliviousAdversary
from repro.dynamic.lazy_rebuild import LazyRebuildMatching
from repro.experiments.e10_dynamic import run
from repro.graphs.generators import clique_union


def test_kernel_update_batch(benchmark):
    """Time 200 dynamic updates at full density (the steady state)."""
    host = clique_union(4, 20)
    universe = list(host.edges())

    def batch():
        alg = LazyRebuildMatching(host.num_vertices, 1, 0.4, seed=0)
        adv = ObliviousAdversary(universe, 0.5, seed=1)
        adv.preload(universe)
        for u, v in universe:
            alg.insert(u, v)
        for upd in adv.stream(200):
            alg.update(upd.op, upd.u, upd.v)
        return alg

    alg = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert alg.matching.is_valid_for(alg.graph.snapshot())


def test_table_e10(benchmark):
    table = once(benchmark, run, clique_sizes=(10, 20, 40), steps=600, seed=0)
    for row in table.rows:
        ours_work, base_work, ours_ratio = row[2], row[3], row[4]
        assert ours_work < base_work          # Thm 3.5 vs [14] surrogate
        assert ours_ratio <= 1.4 + 0.3        # eps + stream slack
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
