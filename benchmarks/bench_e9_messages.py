"""E9 — Theorem 3.3: sublinear message complexity."""

from conftest import once

from repro.core.delta import DeltaPolicy
from repro.distributed.pipeline import distributed_baseline_matching
from repro.experiments.e9_messages import run
from repro.graphs.generators import clique_union


def test_kernel_message_lean_pipeline(benchmark):
    """Time the message-lean (stages 1-3) pipeline on a dense input."""
    graph = clique_union(4, 80)
    policy = DeltaPolicy(constant=0.6)
    rep = benchmark(distributed_baseline_matching, graph, 1, 0.34, 0, policy)
    assert rep.messages < 2 * graph.num_edges  # sublinear here


def test_table_e9(benchmark):
    table = once(benchmark, run, seed=0)
    pipeline_rows = [row for row in table.rows
                     if not str(row[0]).startswith("[")]
    fractions = [row[4] for row in pipeline_rows]
    assert fractions[-1] < fractions[0]  # falls as the graph densifies
    assert fractions[-1] < 1.0
    # The §3.2 contrast: broadcast pays orders of magnitude more bits.
    contrast = {str(row[0]).split("]")[0].strip("["): row[5]
                for row in table.rows if str(row[0]).startswith("[")}
    assert contrast["broadcast round"] > 100 * contrast["unicast round"]
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
