"""Shared-AST vs per-rule-walk benchmark for the lint runner.

The 1.3 runner parses each file once and serves every rule from one
``ast.walk`` (the node-type index on ``RuleContext``); the pre-1.3
runner let each of the five syntactic rules re-walk the full tree
independently.  This benchmark measures both modes on the real ``src/``
tree, asserts they find the identical violations, and reports the
timings and speedup as JSON.

The legacy mode is simulated faithfully: a *fresh* ``RuleContext`` per
(file, rule) pair, so no rule shares the node index with another —
exactly one full tree walk per rule per file, which is what the old
per-rule ``ast.walk`` calls cost.  Only the syntactic rules R1-R5 are
compared (the flow rules R6-R9, the async-concurrency rules R10-R14,
and the performance rules R15-R19 postdate the shared index and never
had a per-rule-walk form); the full nineteen-rule runtime plus the
async-only and perf-only runtimes are reported alongside for context.

Usage::

    PYTHONPATH=src python benchmarks/bench_lint.py \
        --output results/bench_lint.json
"""

from __future__ import annotations

import argparse
import ast
import json
import platform
import sys
import time

from repro.lint.runner import discover_files, lint_paths
from repro.lint.rules import RULES, RuleContext
from repro.lint.violations import collect_pragmas, is_suppressed

#: The rules that exist in both modes (whole-program rules — flow and
#: concurrency — have no per-rule-walk form to compare against).
_SYNTACTIC = [
    rule for rule in RULES.values()
    if not rule.flow and not rule.concurrency and not rule.perf
]

#: The async-concurrency rules, timed as their own workload.
_ASYNC = [rule for rule in RULES.values() if rule.concurrency]

#: The performance rules (R15-R19), timed as their own workload.
_PERF = [rule for rule in RULES.values() if rule.perf]


def _timed(fn, *args, **kwargs):
    # Wall-clock is the *measurand* of this benchmark, not hidden
    # nondeterminism leaking into results — hence the R2 pragmas.
    start = time.perf_counter()  # repro-lint: ignore[R2]
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start  # repro-lint: ignore[R2]


def _legacy_lint(sources):
    """Pre-1.3 dispatch: one fresh context (and tree walk) per rule."""
    out = []
    for path, (tree, text) in sources.items():
        pragmas = collect_pragmas(text)
        for rule in _SYNTACTIC:
            ctx = RuleContext(path=path, tree=tree, source=text)
            for violation in rule.check(ctx):
                if not is_suppressed(violation, pragmas):
                    out.append(violation)
    return sorted(out)


def _shared_lint(sources):
    """1.3 dispatch: one context per file, node index shared by rules."""
    out = []
    for path, (tree, text) in sources.items():
        pragmas = collect_pragmas(text)
        ctx = RuleContext(path=path, tree=tree, source=text)
        for rule in _SYNTACTIC:
            for violation in rule.check(ctx):
                if not is_suppressed(violation, pragmas):
                    out.append(violation)
    return sorted(out)


def bench_lint(target: str, repeats: int) -> dict:
    """Compare both dispatch modes on one tree; best-of-``repeats``."""
    sources = {}
    for path in discover_files([target]):
        text = path.read_text(encoding="utf-8")
        sources[str(path)] = (ast.parse(text, filename=str(path)), text)

    legacy_times, shared_times = [], []
    for _ in range(repeats):
        legacy, t_legacy = _timed(_legacy_lint, sources)
        shared, t_shared = _timed(_shared_lint, sources)
        assert legacy == shared, "shared-index lint diverged from legacy"
        legacy_times.append(t_legacy)
        shared_times.append(t_shared)

    _, t_full = _timed(lint_paths, [target])
    async_times, perf_times = [], []
    for _ in range(repeats):
        _, t_async = _timed(lint_paths, [target], _ASYNC)
        async_times.append(t_async)
        _, t_perf = _timed(lint_paths, [target], _PERF)
        perf_times.append(t_perf)
    async_defs = sum(
        sum(isinstance(node, ast.AsyncFunctionDef) for node in ast.walk(tree))
        for tree, _text in sources.values()
    )
    best_legacy, best_shared = min(legacy_times), min(shared_times)
    return {
        "target": target,
        "files": len(sources),
        "rules_compared": [rule.code for rule in _SYNTACTIC],
        "per_rule_walk_seconds": round(best_legacy, 4),
        "shared_index_seconds": round(best_shared, 4),
        "speedup": round(best_legacy / best_shared, 3),
        "identical_findings": True,
        "full_r1_r19_seconds": round(t_full, 4),
        "async_rules": [rule.code for rule in _ASYNC],
        "async_defs": int(async_defs),
        "async_r10_r14_seconds": round(min(async_times), 4),
        "perf_rules": [rule.code for rule in _PERF],
        "perf_r15_r19_seconds": round(min(perf_times), 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--target", default="src",
                        help="tree to lint (default src)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="timing repetitions, best-of (default 5)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    args = parser.parse_args(argv)

    report = {
        "benchmark": "lint shared node index vs per-rule tree walks",
        "python": platform.python_version(),
        "workloads": [bench_lint(args.target, args.repeats)],
    }
    text = json.dumps(report, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
