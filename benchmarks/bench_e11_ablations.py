"""E11 — ablations: Δ constant and union-vs-mutual marking."""

from conftest import once

from repro.core.sparsifier import build_sparsifier
from repro.experiments.e11_ablations import run
from repro.graphs.generators import clique


def test_kernel_sampler_comparison(benchmark):
    """Time the pos-array sampler (the deterministic-probe one)."""
    g = clique(240)
    result = benchmark(build_sparsifier, g, 10, 0, "pos_array")
    assert result.probes is None


def test_kernel_rejection_sampler(benchmark):
    g = clique(240)
    result = benchmark(build_sparsifier, g, 10, 0, "rejection")
    assert result.subgraph.num_edges <= 240 * 10


def test_table_e11(benchmark):
    table = once(benchmark, run, trials=3, seed=0)
    rows = {row[1]: row for row in table.rows}
    assert rows["mutual first-D (det.)"][3] > 1.5
    assert rows["union (ours)"][3] <= 1.31
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
