"""E7 — Theorem 3.1: the sublinear sequential pipeline."""

from conftest import once

from repro.core.delta import DeltaPolicy
from repro.experiments.e7_sequential import run
from repro.graphs.generators import clique_union
from repro.sequential.pipeline import approximate_matching


def test_kernel_pipeline_dense(benchmark):
    """Time the full sparsify-and-match pipeline on n=480, m=38k."""
    graph = clique_union(3, 160)
    policy = DeltaPolicy(constant=0.5)

    result = benchmark(approximate_matching, graph, 1, 0.3, 0, policy)
    # Sublinearity: far fewer probes than reading the input.
    assert result.probes < 2 * graph.num_edges


def test_kernel_pipeline_scaling(benchmark):
    """Time the pipeline at doubled n (for the scaling row)."""
    graph = clique_union(16, 60)
    result = benchmark(approximate_matching, graph, 1, 0.3, 0)
    assert result.matching.size > 0


def test_table_e7(benchmark):
    table = once(benchmark, run, seed=0)
    densify = [row for row in table.rows if row[0] == "densify"]
    assert densify[-1][5] < densify[0][5]  # probe fraction falls
    assert all(row[6] <= 1.31 for row in table.rows)
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
