"""E14 — MPC: three-round sparsifier matching under memory caps."""

from conftest import once

from repro.experiments.e14_mpc import run
from repro.graphs.generators import clique_union
from repro.mpc.matching import mpc_approx_matching


def test_kernel_mpc_protocol(benchmark):
    """Time one full three-round MPC run (n=240, 8 machines)."""
    graph = clique_union(4, 60)
    res = benchmark(mpc_approx_matching, graph, 1, 0.3, 8, None, 0)
    assert res.rounds == 3
    assert res.max_load <= res.memory_per_machine


def test_table_e14(benchmark):
    table = once(benchmark, run, seed=0)
    for row in table.rows:
        rounds, max_load, budget, raw, ratio = row[2:]
        assert rounds == 3
        assert max_load <= budget
        assert ratio <= 1.31
    # On the densest row, centralizing the raw graph would overflow.
    assert table.rows[-1][5] > table.rows[-1][4]
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
