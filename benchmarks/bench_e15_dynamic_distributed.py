"""E15 — dynamic distributed maintenance of G_Δ under churn."""

from conftest import once

from repro.distributed.dynamic_network import DynamicDistributedSparsifier
from repro.dynamic.adversaries import ObliviousAdversary
from repro.experiments.e15_dynamic_distributed import run
from repro.graphs.generators import clique_union


def test_kernel_churn_batch(benchmark):
    """Time 300 topology changes on a dense network."""
    host = clique_union(4, 30)
    universe = list(host.edges())

    def batch():
        net = DynamicDistributedSparsifier(host.num_vertices, 8, seed=0)
        adv = ObliviousAdversary(universe, 0.5, seed=1)
        adv.preload(universe)
        for u, v in universe:
            net.insert(u, v)
        for upd in adv.stream(300):
            net.update(upd.op, upd.u, upd.v)
        return net

    net = benchmark.pedantic(batch, rounds=1, iterations=1)
    assert net.max_messages_per_update() <= 4 * 8 + 2


def test_table_e15(benchmark):
    table = once(benchmark, run, clique_sizes=(10, 20), steps=400, seed=0)
    for row in table.rows:
        max_msgs, bound, ratio = row[2], row[3], row[5]
        assert max_msgs <= bound
        assert ratio <= 1.6
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
