"""E8 — Theorem 3.2: distributed rounds and quality vs the baseline."""

from conftest import once

from repro.distributed.pipeline import distributed_approx_matching
from repro.experiments.e8_distributed import run, trap_graph


def test_kernel_full_pipeline(benchmark):
    """Time one full four-stage distributed run (n=140)."""
    graph = trap_graph(4, 20, num_paths=15)
    rep = benchmark(distributed_approx_matching, graph, 2, 0.34, 0)
    assert rep.matching.is_valid_for(graph)


def test_table_e8(benchmark):
    table = once(benchmark, run, sizes=(3, 6), seed=0)
    for row in table.rows:
        ours_ratio, base_ratio = row[4], row[5]
        assert ours_ratio <= 1.34 + 1e-9
        assert ours_ratio <= base_ratio + 1e-9
    print("\n" + table.render())


if __name__ == "__main__":
    print(run())
