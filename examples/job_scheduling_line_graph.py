#!/usr/bin/env python
"""Relay pairing via matching in a line graph (β ≤ 2).

Setting: machines connected by data links (edges of a host network H).
A *relay route* is a pair of links sharing a machine — a 2-hop path.
Pairs of links that share an endpoint are exactly the edges of the line
graph L(H), whose neighborhood independence is ≤ 2 (Section 1.1), so a
maximum matching in L(H) is a **maximum packing of link-disjoint 2-hop
relay routes** in H.

The host is dense, so L(H) is *very* dense — the regime where the
sublinear pipeline shines.  Run::

    python examples/job_scheduling_line_graph.py
"""

import numpy as np

from repro import mcm_exact
from repro.graphs.generators.line_graphs import line_graph
from repro.sequential import approximate_matching, sublinearity_certificate


def main() -> None:
    rng = np.random.default_rng(3)
    hosts = 40
    host_edges = [
        (u, v)
        for u in range(hosts)
        for v in range(u + 1, hosts)
        if rng.random() < 0.5
    ]
    links_graph, links = line_graph(hosts, host_edges)
    print(f"cluster: {hosts} machines, {len(links)} links")
    print(f"line graph: n={links_graph.num_vertices}, "
          f"m={links_graph.num_edges}, beta <= 2\n")

    run = approximate_matching(links_graph, beta=2, epsilon=0.25, seed=0)
    cert = sublinearity_certificate(links_graph, run)
    optimum = mcm_exact(links_graph).size

    print(f"relay routes packed: {run.matching.size} "
          f"(exact optimum: {optimum})")
    print(f"probes: {run.probes} of 2m = {int(cert['input_size'])} "
          f"({cert['probe_fraction']:.1%} of the line graph read)\n")

    # Decode a few routes back to physical links; each matched pair of
    # links must share exactly one relay machine.
    used_links: set[int] = set()
    print("first relay routes (link + link via shared machine):")
    for a, b in list(run.matching.edges())[:5]:
        shared = set(links[a]) & set(links[b])
        assert len(shared) == 1, "matched links must share one machine"
        print(f"  {links[a]} + {links[b]}  via machine {shared.pop()}")
    for a, b in run.matching.edges():
        assert a not in used_links and b not in used_links
        used_links.update((a, b))
    print("(verified: routes are link-disjoint, each pair shares a machine)")


if __name__ == "__main__":
    main()
