#!/usr/bin/env python
"""The dynamic-matching service, end to end, in one process.

Starts a journaling server on an ephemeral port, creates a session,
drives it with an adaptive adversarial burst through the real TCP
stack, reads the latency/certificate stats, and then proves the replay
property: rebuilding the session offline from its journal lands on the
exact served fingerprint, byte for byte.
Run::

    python examples/service_demo.py
"""

import tempfile
from pathlib import Path

from repro.service import BackgroundServer, ServiceClient, replay_journal
from repro.service.loadgen import run_load


def main() -> None:
    journal_dir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    with BackgroundServer(journal_dir=journal_dir) as server:
        print(f"server listening on {server.host}:{server.port}\n")
        with ServiceClient(server.host, server.port) as client:
            # --- a session, by hand ---------------------------------- #
            created = client.create(
                "demo", num_vertices=16, beta=1, epsilon=0.4, seed=0
            )
            print(f"session 'demo': delta={created['delta']}, "
                  f"work budget={created['work_budget_chunks']} chunks")
            client.insert("demo", 0, 1)
            client.insert("demo", 2, 3)
            client.batch("demo", [("insert", 4, 5), ("delete", 0, 1)])
            matching = client.query_matching("demo")
            print(f"matching after 4 updates: size {matching['size']}, "
                  f"edges {matching['edges']}\n")

            # --- adversarial load through the same TCP stack --------- #
            report = run_load(client, "burst", adversary="adaptive",
                              steps=400, seed=7)
            stats = report["stats"]
            print("adaptive burst: "
                  f"{report['applied']} updates applied, "
                  f"{report['attacks']} matched-edge attacks, "
                  f"{report['updates_per_second']:.0f} updates/s")
            print("latency: "
                  f"p50={stats['latency']['p50_ms']}ms "
                  f"p99={stats['latency']['p99_ms']}ms "
                  f"(budget {stats['latency']['budget_ms']}ms, "
                  f"{stats['latency']['over_budget']} over)")
            print(f"certified factor (Lemma 3.4): "
                  f"{stats['certified_factor']}")
            print(f"served fingerprint: {report['fingerprint'][:16]}…\n")

    # --- the replay property: offline rebuild, identical state ------- #
    replayed = replay_journal(journal_dir / "burst.jsonl")
    identical = replayed.fingerprint() == report["fingerprint"]
    print(f"journal replay: {replayed.seq} updates -> fingerprint "
          f"{replayed.fingerprint()[:16]}… "
          f"({'identical' if identical else 'DIVERGED'})")
    assert identical


if __name__ == "__main__":
    main()
