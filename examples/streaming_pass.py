#!/usr/bin/env python
"""One-pass matching over an edge stream that doesn't fit in memory.

A logging pipeline emits pairwise-compatibility edges between tasks; the
stream is too large to store, but tasks have bounded conflict structure
(β ≤ 2: clique unions plus chains).  A single pass of per-vertex
reservoir sampling retains only O(n·Δ) edges — distributed exactly like
the paper's G_Δ — and matching the retained subgraph offline is
(1+ε)-optimal, while the classic one-pass greedy matcher is stuck at its
2-approximation traps.  Run::

    python examples/streaming_pass.py
"""

from repro import mcm_exact
from repro.core.delta import DeltaPolicy
from repro.experiments.e8_distributed import trap_graph
from repro.streaming import (
    EdgeStream,
    streaming_approx_matching,
    streaming_greedy_matching,
)


def main() -> None:
    graph = trap_graph(num_cliques=4, clique_size=150, num_paths=150)
    optimum = mcm_exact(graph).size
    print(f"stream: n={graph.num_vertices} tasks, "
          f"m={graph.num_edges} compatibility edges, beta = 2")
    print(f"offline optimum: {optimum}\n")

    ours = streaming_approx_matching(
        EdgeStream.from_graph(graph, seed=0), beta=2, epsilon=0.25,
        seed=1, policy=DeltaPolicy(constant=0.6),
    )
    greedy = streaming_greedy_matching(EdgeStream.from_graph(graph, seed=0))

    print("reservoir sparsifier (this paper):")
    print(f"  matched: {ours.matching.size}  "
          f"(ratio {optimum / ours.matching.size:.3f})")
    print(f"  passes: {ours.passes}, memory: {ours.memory} edge slots "
          f"({ours.memory / graph.num_edges:.1%} of the stream)\n")

    print("one-pass greedy (classic semi-streaming baseline):")
    print(f"  matched: {greedy.matching.size}  "
          f"(ratio {optimum / greedy.matching.size:.3f})")
    print(f"  passes: {greedy.passes}, memory: {greedy.memory} matched pairs")


if __name__ == "__main__":
    main()
