#!/usr/bin/env python
"""Quickstart: sparsify a dense bounded-β graph and match on the sparsifier.

Builds a dense clique union (β = 1), constructs the random matching
sparsifier G_Δ of Theorem 2.1, and shows that (a) the sparsifier is a
small fraction of the graph, and (b) its maximum matching is within 1+ε
of the graph's.  Run::

    python examples/quickstart.py
"""

from repro import build_sparsifier, delta_practical, mcm_exact
from repro.core.delta import DeltaPolicy
from repro.core.properties import sparsifier_quality
from repro.graphs.generators import clique_union
from repro.sequential import approximate_matching, sublinearity_certificate


def main() -> None:
    beta, epsilon = 1, 0.2
    graph = clique_union(8, 80)  # n = 640, m = 25,280 — dense!
    print(f"graph: n={graph.num_vertices}, m={graph.num_edges}, beta={beta}")

    # --- The sparsifier, directly -------------------------------------
    # constant=0.5: E11 shows even this lean delta achieves (1+eps).
    delta = delta_practical(beta, epsilon, constant=0.5)
    result = build_sparsifier(graph, delta, seed=0)
    quality = sparsifier_quality(graph, result.subgraph)
    print(f"\nG_delta with delta={delta}:")
    print(f"  edges: {result.subgraph.num_edges} "
          f"({result.subgraph.num_edges / graph.num_edges:.1%} of the graph)")
    print(f"  |MCM(G)| = {quality.mcm_graph}, "
          f"|MCM(G_delta)| = {quality.mcm_sparsifier}")
    print(f"  approximation ratio: {quality.ratio:.4f}  "
          f"(target: <= {1 + epsilon})")

    # --- The full sublinear pipeline (Theorem 3.1) ---------------------
    run = approximate_matching(graph, beta=beta, epsilon=epsilon, seed=1,
                               policy=DeltaPolicy(constant=0.5))
    cert = sublinearity_certificate(graph, run)
    print(f"\nsequential pipeline (Theorem 3.1):")
    print(f"  matching size: {run.matching.size} "
          f"(exact MCM: {mcm_exact(graph).size})")
    print(f"  adjacency-array probes: {run.probes} vs input size "
          f"2m = {int(cert['input_size'])} "
          f"-> read only {cert['probe_fraction']:.1%} of the graph")


if __name__ == "__main__":
    main()
