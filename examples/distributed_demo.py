#!/usr/bin/env python
"""Anatomy of the distributed pipeline, stage by stage.

Runs each protocol of Theorem 3.2 separately on one network and prints
what every stage costs (rounds / messages / bits) and what it produces —
a didactic tour of §3.2.  Run::

    python examples/distributed_demo.py
"""

from repro import mcm_exact
from repro.core.bounded_degree import solomon_degree_bound
from repro.core.delta import DeltaPolicy
from repro.distributed import (
    AugmentingPathEliminationProtocol,
    RandomizedMatchingProtocol,
    SolomonProtocol,
    SparsifierProtocol,
    SyncNetwork,
)
from repro.graphs.builder import from_edges
from repro.graphs.generators import clique_union
from repro.instrument.counters import CounterSet


def stage(name: str, metrics: CounterSet, before: dict) -> dict:
    after = metrics.snapshot()
    print(f"  {name}: rounds +{after.get('rounds', 0) - before.get('rounds', 0)}, "
          f"messages +{after.get('messages', 0) - before.get('messages', 0)}, "
          f"bits +{after.get('bits', 0) - before.get('bits', 0)}")
    return after


def main() -> None:
    beta, epsilon = 1, 0.34
    graph = clique_union(4, 24)
    optimum = mcm_exact(graph).size
    print(f"network: n={graph.num_vertices}, m={graph.num_edges}, "
          f"exact MCM = {optimum}\n")

    metrics = CounterSet()
    snapshot: dict = {}
    delta = DeltaPolicy(constant=0.6).delta(beta, epsilon, graph.num_vertices)

    # Stage 1: one-round random sparsifier.
    print(f"stage 1 — SparsifierProtocol (delta = {delta}):")
    net = SyncNetwork(graph, metrics)
    sparsify = SparsifierProtocol(delta, seed=0)
    net.run(sparsify, max_rounds=2)
    g_delta = from_edges(graph.num_vertices, sorted(sparsify.edges))
    snapshot = stage("cost", metrics, snapshot)
    print(f"  G_delta: {g_delta.num_edges} edges "
          f"({g_delta.num_edges / graph.num_edges:.1%} of input)\n")

    # Stage 2: one-round Solomon bounded-degree sparsifier.
    bound = solomon_degree_bound(2 * delta, epsilon)
    print(f"stage 2 — SolomonProtocol (degree bound = {bound}):")
    net2 = SyncNetwork(g_delta, metrics)
    solomon = SolomonProtocol(bound)
    net2.run(solomon, max_rounds=2)
    g_tilde = from_edges(graph.num_vertices, sorted(solomon.edges))
    snapshot = stage("cost", metrics, snapshot)
    print(f"  G~: {g_tilde.num_edges} edges, max degree "
          f"{g_tilde.max_degree()} (bound {bound})\n")

    # Stage 3: randomized maximal matching.
    print("stage 3 — RandomizedMatchingProtocol:")
    net3 = SyncNetwork(g_tilde, metrics)
    matcher = RandomizedMatchingProtocol(seed=1)
    net3.run(matcher, max_rounds=10_000)
    snapshot = stage("cost", metrics, snapshot)
    size3 = matcher.matching.size
    print(f"  maximal matching: {size3} edges "
          f"(ratio {optimum / size3:.3f})\n")

    # Stage 4: short augmenting-path elimination.
    print("stage 4 — AugmentingPathEliminationProtocol (k = 3):")
    improver = AugmentingPathEliminationProtocol(3, matcher.mate, seed=2)
    net4 = SyncNetwork(g_tilde, metrics)
    net4.run(improver, max_rounds=100_000)
    snapshot = stage("cost", metrics, snapshot)
    size4 = improver.matching.size
    print(f"  improved matching: {size4} edges "
          f"(ratio {optimum / size4:.3f}, "
          f"{improver.iterations} iterations)\n")

    total = metrics.snapshot()
    print(f"end-to-end: {total['rounds']} rounds, {total['messages']} messages")
    print("(stages 1-3 are the Theorem 3.3 message-lean pipeline; stage 4 "
          "trades LOCAL-model flooding for the 1+eps quality — see "
          "experiment E9 for the sublinear-message measurement)")


if __name__ == "__main__":
    main()
