#!/usr/bin/env python
"""Wireless link scheduling on a unit-disk network.

The intro's motivating setting for bounded-growth graphs: radios in the
plane, an interference edge between any two within range (a unit-disk
graph, β ≤ 5).  A matching is a set of simultaneously schedulable
point-to-point transmissions.  We schedule with the *distributed*
pipeline of Theorem 3.2 — each radio acts on local information only —
and compare rounds/messages/quality against the (2+ε)-style baseline.
Run::

    python examples/wireless_scheduling.py
"""

from repro import mcm_exact
from repro.core.delta import DeltaPolicy
from repro.distributed import (
    distributed_approx_matching,
    distributed_baseline_matching,
)
from repro.graphs.generators import unit_disk_graph


def main() -> None:
    graph, points = unit_disk_graph(num_points=220, area_side=4.0, seed=7)
    beta = 5  # planar packing bound for unit disks
    optimum = mcm_exact(graph).size
    print(f"radio network: n={graph.num_vertices} radios, "
          f"m={graph.num_edges} interference pairs")
    print(f"max simultaneous transmissions (exact MCM): {optimum}\n")

    policy = DeltaPolicy(constant=0.5)
    ours = distributed_approx_matching(graph, beta=beta, epsilon=0.5,
                                       seed=1, policy=policy)
    base = distributed_baseline_matching(graph, beta=beta, epsilon=0.5,
                                         seed=1, policy=policy)

    for name, rep in (("sparsify + improve (Thm 3.2)", ours),
                      ("maximal-matching baseline", base)):
        ratio = optimum / rep.matching.size if rep.matching.size else float("inf")
        print(f"{name}:")
        print(f"  scheduled links: {rep.matching.size}  "
              f"(ratio {ratio:.3f})")
        print(f"  rounds: {rep.rounds}, messages: {rep.messages}\n")
    print("(the improvement stage floods local balls, so it pays messages "
          "for quality;\n message *sublinearity* — Theorem 3.3 — is "
          "demonstrated on dense inputs by experiment E9)\n")

    # Show the schedule is physically valid: no radio in two links.
    used = set()
    for u, v in ours.matching.edges():
        assert u not in used and v not in used
        used.update((u, v))
    print(f"schedule validated: {len(used)} radios active, none doubly booked")


if __name__ == "__main__":
    main()
