#!/usr/bin/env python
"""Matching a graph that no single machine can hold (MPC model).

A cluster of M machines, each with S words of memory, holds a dense
compatibility graph partitioned across its disks.  Centralizing the raw
graph would overflow any one machine — but the sparsifier G_Δ fits,
precisely because of the paper's size bound (Observation 2.10).  Three
MPC rounds produce a (1+ε)-optimal matching; the simulator *enforces*
the memory budget, so the feasibility claim is checked, not asserted.
Run::

    python examples/mpc_cluster.py
"""

from repro import mcm_exact, mpc_approx_matching
from repro.core.delta import DeltaPolicy
from repro.graphs.generators import clique_union
from repro.mpc import MachineOverflowError


def main() -> None:
    graph = clique_union(4, 90)  # n = 360, m = 16,020
    machines = 8
    optimum = mcm_exact(graph).size
    print(f"input: n={graph.num_vertices}, m={graph.num_edges}, "
          f"{machines} machines")

    result = mpc_approx_matching(
        graph, beta=1, epsilon=0.25, num_machines=machines,
        seed=0, policy=DeltaPolicy(constant=0.6),
    )
    ratio = optimum / result.matching.size
    print(f"\nthree-round sparsifier protocol:")
    print(f"  matched: {result.matching.size} (ratio {ratio:.3f}, "
          f"exact optimum {optimum})")
    print(f"  rounds: {result.rounds}")
    print(f"  peak machine load: {result.max_load} words "
          f"(budget S = {result.memory_per_machine})")
    print(f"  centralizing the raw graph would need ~{3 * 2 * graph.num_edges} "
          "words — over budget\n")

    # Show the budget is real: asking the cluster to work with a budget
    # below the sparsifier's size fails loudly.
    try:
        mpc_approx_matching(graph, beta=1, epsilon=0.25,
                            num_machines=machines,
                            memory_per_machine=200, seed=0)
    except MachineOverflowError as err:
        print(f"with S = 200 words the simulator refuses, as it should:")
        print(f"  {err}")


if __name__ == "__main__":
    main()
