#!/usr/bin/env python
"""Maintaining a matching over a live edge stream — with a hostile user.

A marketplace matches buyers and sellers whose offers come and go.  The
offer universe is a dense bounded-β graph; edges are inserted and deleted
by an *adaptive* adversary that watches the published matching and
preferentially kills matched offers — the scenario Theorem 3.5's
algorithm is built for.  We track the maintained approximation ratio and
the per-update work, and compare with the 2-approximation baseline.
Run::

    python examples/dynamic_stream.py
"""

from repro import mcm_exact
from repro.dynamic import (
    AdaptiveAdversary,
    DynamicMaximalMatching,
    LazyRebuildMatching,
)
from repro.graphs.generators import clique_union


def main() -> None:
    host = clique_union(4, 24)  # offer universe, beta = 1
    universe = list(host.edges())
    n = host.num_vertices
    print(f"offer universe: n={n}, {len(universe)} possible edges\n")

    ours = LazyRebuildMatching(n, beta=1, epsilon=0.4, seed=0)
    base = DynamicMaximalMatching(n)
    adversary = AdaptiveAdversary(universe, observe=lambda: ours.matching,
                                  attack_probability=0.5, seed=1)

    # Warm up to full density, then let the adversary attack.
    adversary.preload(universe)
    for u, v in universe:
        ours.insert(u, v)
        base.insert(u, v)
    ours.work_log.clear()
    base.work_log.clear()

    checkpoints = []
    steps = 1500
    for step in range(steps):
        upd = adversary.next_update()
        if upd is None:
            break
        ours.update(upd.op, upd.u, upd.v)
        base.update(upd.op, upd.u, upd.v)
        if (step + 1) % 300 == 0:
            opt = mcm_exact(ours.graph.snapshot()).size
            checkpoints.append(
                (step + 1,
                 opt / ours.matching.size if ours.matching.size else float("inf"),
                 opt / base.matching.size if base.matching.size else float("inf"))
            )

    print(f"adversary attacked matched edges {adversary.attacks} times\n")
    print(f"{'step':>6}  {'ours ratio':>10}  {'baseline ratio':>14}")
    for step, ours_r, base_r in checkpoints:
        print(f"{step:>6}  {ours_r:>10.3f}  {base_r:>14.3f}")

    print(f"\nworst per-update work: ours {ours.max_work_per_update()} "
          f"rebuild chunks vs baseline {base.max_work_per_update()} "
          f"neighbor scans")
    print(f"rebuilds completed: {ours.rebuilds_completed}")


if __name__ == "__main__":
    main()
